// Command benchjson converts `go test -bench -benchmem` output on stdin to
// a stable JSON ledger on stdout, so benchmark snapshots can be committed
// and diffed (see scripts/bench.sh and the BENCH_*.json files at the repo
// root), and compares two ledgers as a CI regression gate.
//
// Usage:
//
//	go test -run '^$' -bench . -benchmem ./... | benchjson > BENCH.json
//	benchjson compare old.json new.json [-threshold 1.25] [-min-speedup Slow/Fast:5]
//
// compare exits nonzero when any benchmark regresses: its ns/op grows past
// the threshold factor, a zero-allocation benchmark starts allocating, its
// allocations grow past the threshold, it disappears from the new ledger
// (which is how a silently dropped bench.sh pattern surfaces in CI), or a
// -min-speedup pair's ratio falls below its required factor.
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"
)

// Result is one parsed benchmark line.
type Result struct {
	Name        string  `json:"name"`
	Iterations  int64   `json:"iterations"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op,omitempty"`
	AllocsPerOp float64 `json:"allocs_per_op,omitempty"`
}

// Ledger is the committed snapshot format.
type Ledger struct {
	Goos       string   `json:"goos,omitempty"`
	Goarch     string   `json:"goarch,omitempty"`
	CPU        string   `json:"cpu,omitempty"`
	Benchmarks []Result `json:"benchmarks"`
}

func main() {
	if len(os.Args) > 1 && os.Args[1] == "compare" {
		os.Exit(runCompare(os.Args[2:], os.Stdout, os.Stderr))
	}
	ledger, err := parse(bufio.NewScanner(os.Stdin))
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if err := writeLedger(os.Stdout, ledger); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
}

// writeLedger encodes a ledger as indented JSON — the committed snapshot
// format.
func writeLedger(w io.Writer, l Ledger) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(l)
}

func parse(sc *bufio.Scanner) (Ledger, error) {
	var ledger Ledger
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case strings.HasPrefix(line, "goos:"):
			ledger.Goos = strings.TrimSpace(strings.TrimPrefix(line, "goos:"))
		case strings.HasPrefix(line, "goarch:"):
			ledger.Goarch = strings.TrimSpace(strings.TrimPrefix(line, "goarch:"))
		case strings.HasPrefix(line, "cpu:"):
			ledger.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu:"))
		case strings.HasPrefix(line, "Benchmark"):
			if r, ok := parseBench(line); ok {
				ledger.Benchmarks = append(ledger.Benchmarks, r)
			}
		}
	}
	if err := sc.Err(); err != nil {
		return Ledger{}, err
	}
	if len(ledger.Benchmarks) == 0 {
		return Ledger{}, fmt.Errorf("no benchmark lines found on stdin")
	}
	return ledger, nil
}

// parseBench parses a line like
//
//	BenchmarkFoo-8   1000   1234 ns/op   56 B/op   7 allocs/op
func parseBench(line string) (Result, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Result{}, false
	}
	name := fields[0]
	if i := strings.LastIndex(name, "-"); i > 0 {
		// Strip the -GOMAXPROCS suffix so ledgers diff cleanly across hosts.
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Result{}, false
	}
	r := Result{Name: name, Iterations: iters}
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			continue
		}
		switch fields[i+1] {
		case "ns/op":
			r.NsPerOp = v
		case "B/op":
			r.BytesPerOp = v
		case "allocs/op":
			r.AllocsPerOp = v
		}
	}
	if r.NsPerOp == 0 {
		return Result{}, false
	}
	return r, true
}
