package main

// compare.go — the `benchjson compare` subcommand: the perf regression gate
// CI runs on every PR (see the bench-gate job in .github/workflows/ci.yml
// and `make bench-compare`). It diffs two committed ledgers and fails on
//
//   - hot-path time regressions: ns/op grew past the threshold factor;
//   - allocation regressions: a zero-allocs/op benchmark (the 0-alloc
//     kernels are load-bearing contracts, see the AllocsPerRun tests)
//     started allocating, or allocs/op grew past the threshold with more
//     than allocSlack new allocations;
//   - disappeared benchmarks: a name present in the old ledger but not the
//     new one, which is how a hand-edited bench.sh pattern that silently
//     drops a benchmark turns into a loud CI failure;
//   - collapsed speedups: a -min-speedup 'Slow/Fast:factor' pair whose
//     ratio in the new ledger fell below the factor — the gate that keeps
//     the result cache's hit path actually fast, not merely correct.
//
// Improvements and newly added benchmarks are reported as notes, never as
// failures.

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"strconv"
	"strings"
)

const (
	// defaultThreshold is the ns/op growth factor treated as a regression;
	// 25% headroom absorbs scheduler and turbo noise at CI benchtimes.
	defaultThreshold = 1.25
	// defaultAllocThreshold is the allocs/op growth factor. It is a
	// separate knob because allocation counts are deterministic: loosening
	// -threshold for cross-machine time noise (as CI's bench-gate does)
	// must not loosen the allocation gate with it.
	defaultAllocThreshold = 1.25
	// allocSlack is the absolute allocs/op growth tolerated before the
	// relative threshold applies — allocation counts are deterministic, but
	// a fixed +1 from a new feature on a 2-alloc benchmark should not read
	// as a 50% regression.
	allocSlack = 4
)

// speedupCheck is one -min-speedup requirement: within the NEW ledger,
// benchmark slow must be at least factor times slower than benchmark fast.
// CI uses it to gate the result cache — a hit that stops being much
// cheaper than a miss means the cache fast path silently broke.
type speedupCheck struct {
	slow, fast string
	factor     float64
}

// speedupChecks is a repeatable flag.Value: -min-speedup 'Slow/Fast:5'.
type speedupChecks []speedupCheck

func (s *speedupChecks) String() string {
	parts := make([]string, len(*s))
	for i, c := range *s {
		parts[i] = fmt.Sprintf("%s/%s:%g", c.slow, c.fast, c.factor)
	}
	return strings.Join(parts, ",")
}

func (s *speedupChecks) Set(v string) error {
	names, factorStr, ok := strings.Cut(v, ":")
	if !ok {
		return fmt.Errorf("want Slow/Fast:factor, got %q", v)
	}
	slow, fast, ok := strings.Cut(names, "/")
	if !ok || slow == "" || fast == "" {
		return fmt.Errorf("want Slow/Fast:factor, got %q", v)
	}
	factor, err := strconv.ParseFloat(factorStr, 64)
	if err != nil || factor <= 1 {
		return fmt.Errorf("factor in %q must be a number > 1", v)
	}
	*s = append(*s, speedupCheck{slow: slow, fast: fast, factor: factor})
	return nil
}

// checkSpeedups evaluates -min-speedup requirements against the new
// ledger. A missing benchmark or a ratio below the factor is a
// regression; a satisfied check is reported as a note.
func checkSpeedups(newL Ledger, checks speedupChecks) []problem {
	byName := make(map[string]Result, len(newL.Benchmarks))
	for _, r := range newL.Benchmarks {
		byName[r.Name] = r
	}
	var probs []problem
	for _, c := range checks {
		pair := c.slow + "/" + c.fast
		slow, okS := byName[c.slow]
		fast, okF := byName[c.fast]
		switch {
		case !okS || !okF:
			probs = append(probs, problem{pair, "speedup check: benchmark missing from new ledger", true})
		case slow.NsPerOp < fast.NsPerOp*c.factor:
			probs = append(probs, problem{pair, fmt.Sprintf(
				"speedup collapsed to %.2fx: %.4g vs %.4g ns/op (want >= %.2gx)",
				slow.NsPerOp/fast.NsPerOp, slow.NsPerOp, fast.NsPerOp, c.factor), true})
		default:
			probs = append(probs, problem{pair, fmt.Sprintf(
				"speedup %.2fx (>= %.2gx required)", slow.NsPerOp/fast.NsPerOp, c.factor), false})
		}
	}
	return probs
}

// problem is one comparison finding.
type problem struct {
	name string
	msg  string
	// regression distinguishes gate failures from informational notes.
	regression bool
}

// compareLedgers diffs new against old and returns findings sorted by
// benchmark name, regressions first. threshold gates ns/op growth;
// allocThreshold gates allocs/op growth (a zero-alloc benchmark that starts
// allocating fails regardless of either).
func compareLedgers(oldL, newL Ledger, threshold, allocThreshold float64) []problem {
	newBy := make(map[string]Result, len(newL.Benchmarks))
	for _, r := range newL.Benchmarks {
		newBy[r.Name] = r
	}
	oldBy := make(map[string]Result, len(oldL.Benchmarks))
	var probs []problem
	for _, o := range oldL.Benchmarks {
		oldBy[o.Name] = o
		n, ok := newBy[o.Name]
		if !ok {
			probs = append(probs, problem{o.Name, "missing from new ledger (dropped benchmark or stale bench.sh pattern)", true})
			continue
		}
		switch {
		case n.NsPerOp > o.NsPerOp*threshold:
			probs = append(probs, problem{o.Name, fmt.Sprintf(
				"time regressed %.2fx: %.4g -> %.4g ns/op (threshold %.2fx)",
				n.NsPerOp/o.NsPerOp, o.NsPerOp, n.NsPerOp, threshold), true})
		case n.NsPerOp*threshold < o.NsPerOp:
			probs = append(probs, problem{o.Name, fmt.Sprintf(
				"improved %.2fx: %.4g -> %.4g ns/op",
				o.NsPerOp/n.NsPerOp, o.NsPerOp, n.NsPerOp), false})
		}
		switch {
		case o.AllocsPerOp == 0 && n.AllocsPerOp > 0:
			probs = append(probs, problem{o.Name, fmt.Sprintf(
				"zero-alloc kernel now allocates: 0 -> %g allocs/op", n.AllocsPerOp), true})
		case n.AllocsPerOp > o.AllocsPerOp*allocThreshold && n.AllocsPerOp-o.AllocsPerOp > allocSlack:
			probs = append(probs, problem{o.Name, fmt.Sprintf(
				"allocations regressed: %g -> %g allocs/op (threshold %.2fx, slack %d)",
				o.AllocsPerOp, n.AllocsPerOp, allocThreshold, allocSlack), true})
		}
	}
	for _, n := range newL.Benchmarks {
		if _, ok := oldBy[n.Name]; !ok {
			probs = append(probs, problem{n.Name, "new benchmark (not in old ledger)", false})
		}
	}
	sort.Slice(probs, func(i, j int) bool {
		if probs[i].regression != probs[j].regression {
			return probs[i].regression
		}
		return probs[i].name < probs[j].name
	})
	return probs
}

func loadLedger(path string) (Ledger, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Ledger{}, err
	}
	var l Ledger
	if err := json.Unmarshal(data, &l); err != nil {
		return Ledger{}, fmt.Errorf("%s: %w", path, err)
	}
	if len(l.Benchmarks) == 0 {
		return Ledger{}, fmt.Errorf("%s: ledger has no benchmarks", path)
	}
	return l, nil
}

// runCompare executes the subcommand and returns the process exit code:
// 0 clean, 1 regressions found, 2 usage or I/O error.
func runCompare(args []string, out, errw io.Writer) int {
	fs := flag.NewFlagSet("compare", flag.ContinueOnError)
	fs.SetOutput(errw)
	threshold := fs.Float64("threshold", defaultThreshold,
		"ns/op growth factor treated as a regression")
	allocThreshold := fs.Float64("alloc-threshold", defaultAllocThreshold,
		"allocs/op growth factor treated as a regression (0->nonzero always fails)")
	var speedups speedupChecks
	fs.Var(&speedups, "min-speedup",
		"require Slow/Fast:factor within the new ledger (repeatable), e.g. -min-speedup 'BenchmarkMiss/BenchmarkHit:5'")
	fs.Usage = func() {
		fmt.Fprintln(errw, "usage: benchjson compare old.json new.json [-threshold 1.25] [-alloc-threshold 1.25] [-min-speedup Slow/Fast:factor]")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if fs.NArg() < 2 {
		fs.Usage()
		return 2
	}
	oldPath, newPath := fs.Arg(0), fs.Arg(1)
	// Accept flags after the positionals too: compare a.json b.json -threshold 2.
	if err := fs.Parse(fs.Args()[2:]); err != nil {
		return 2
	}
	if *threshold <= 1 || *allocThreshold <= 1 {
		fmt.Fprintln(errw, "benchjson: -threshold and -alloc-threshold must be > 1")
		return 2
	}
	oldL, err := loadLedger(oldPath)
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 2
	}
	newL, err := loadLedger(newPath)
	if err != nil {
		fmt.Fprintln(errw, "benchjson:", err)
		return 2
	}
	probs := compareLedgers(oldL, newL, *threshold, *allocThreshold)
	probs = append(probs, checkSpeedups(newL, speedups)...)
	regressions := 0
	for _, p := range probs {
		tag := "note"
		if p.regression {
			tag = "REGRESSION"
			regressions++
		}
		fmt.Fprintf(out, "%s: %s: %s\n", tag, p.name, p.msg)
	}
	if regressions > 0 {
		fmt.Fprintf(out, "benchjson: %d regression(s) vs %s (threshold %.2fx)\n", regressions, oldPath, *threshold)
		return 1
	}
	fmt.Fprintf(out, "benchjson: ok — %d benchmarks within %.2fx of %s\n", len(oldL.Benchmarks), *threshold, oldPath)
	return 0
}
