package main

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func ledger(results ...Result) Ledger {
	return Ledger{Goos: "linux", Goarch: "amd64", Benchmarks: results}
}

func baseLedger() Ledger {
	return ledger(
		Result{Name: "BenchmarkFast", Iterations: 1000, NsPerOp: 100},
		Result{Name: "BenchmarkZeroAlloc", Iterations: 1000, NsPerOp: 2000, AllocsPerOp: 0},
		Result{Name: "BenchmarkAllocs", Iterations: 1000, NsPerOp: 5000, AllocsPerOp: 10, BytesPerOp: 512},
	)
}

func regressionsOf(probs []problem) []string {
	var out []string
	for _, p := range probs {
		if p.regression {
			out = append(out, p.name+": "+p.msg)
		}
	}
	return out
}

func TestCompareClean(t *testing.T) {
	old := baseLedger()
	now := baseLedger()
	now.Benchmarks[0].NsPerOp = 110 // within threshold
	if regs := regressionsOf(compareLedgers(old, now, 1.25, 1.25)); len(regs) != 0 {
		t.Errorf("clean compare found regressions: %v", regs)
	}
}

func TestCompareTimeRegression(t *testing.T) {
	old := baseLedger()
	now := baseLedger()
	now.Benchmarks[0].NsPerOp = 160 // 1.6x > 1.25x
	regs := regressionsOf(compareLedgers(old, now, 1.25, 1.25))
	if len(regs) != 1 || !strings.Contains(regs[0], "BenchmarkFast") || !strings.Contains(regs[0], "time regressed") {
		t.Errorf("regressions = %v, want one BenchmarkFast time regression", regs)
	}
	// The same delta passes under a looser threshold.
	if regs := regressionsOf(compareLedgers(old, now, 2.0, 2.0)); len(regs) != 0 {
		t.Errorf("loose threshold still fails: %v", regs)
	}
}

func TestCompareZeroAllocKernel(t *testing.T) {
	old := baseLedger()
	now := baseLedger()
	now.Benchmarks[1].AllocsPerOp = 1 // 0 -> 1 must fail regardless of threshold
	regs := regressionsOf(compareLedgers(old, now, 10, 10))
	if len(regs) != 1 || !strings.Contains(regs[0], "zero-alloc") {
		t.Errorf("regressions = %v, want the zero-alloc kernel failure", regs)
	}
}

func TestCompareAllocGrowth(t *testing.T) {
	old := baseLedger()
	now := baseLedger()
	now.Benchmarks[2].AllocsPerOp = 40 // 4x and +30 over slack
	regs := regressionsOf(compareLedgers(old, now, 1.25, 1.25))
	if len(regs) != 1 || !strings.Contains(regs[0], "allocations regressed") {
		t.Errorf("regressions = %v, want an alloc growth failure", regs)
	}
	// Small absolute growth stays inside the slack even when relatively large.
	now.Benchmarks[2].AllocsPerOp = 13
	if regs := regressionsOf(compareLedgers(old, now, 1.25, 1.25)); len(regs) != 0 {
		t.Errorf("slack did not absorb +3 allocs: %v", regs)
	}
}

// TestCompareAllocGateIndependentOfTimeThreshold pins the CI configuration:
// loosening -threshold for cross-machine ns/op noise must not loosen the
// deterministic allocation gate.
func TestCompareAllocGateIndependentOfTimeThreshold(t *testing.T) {
	old := baseLedger()
	now := baseLedger()
	now.Benchmarks[2].AllocsPerOp = 19 // 1.9x and +9 over slack
	regs := regressionsOf(compareLedgers(old, now, 2.0, 1.25))
	if len(regs) != 1 || !strings.Contains(regs[0], "allocations regressed") {
		t.Errorf("regressions = %v, want the alloc gate to hold at its own threshold", regs)
	}
}

func TestCompareMissingBenchmark(t *testing.T) {
	old := baseLedger()
	now := ledger(old.Benchmarks[0], old.Benchmarks[1]) // BenchmarkAllocs dropped
	regs := regressionsOf(compareLedgers(old, now, 1.25, 1.25))
	if len(regs) != 1 || !strings.Contains(regs[0], "missing from new ledger") {
		t.Errorf("regressions = %v, want a missing-benchmark failure", regs)
	}
}

func TestCompareNewAndImprovedAreNotes(t *testing.T) {
	old := baseLedger()
	now := baseLedger()
	now.Benchmarks[0].NsPerOp = 10 // 10x improvement
	now.Benchmarks = append(now.Benchmarks, Result{Name: "BenchmarkBrandNew", Iterations: 1, NsPerOp: 1})
	probs := compareLedgers(old, now, 1.25, 1.25)
	if regs := regressionsOf(probs); len(regs) != 0 {
		t.Errorf("improvement/new flagged as regression: %v", regs)
	}
	var notes []string
	for _, p := range probs {
		notes = append(notes, p.msg)
	}
	joined := strings.Join(notes, "\n")
	if !strings.Contains(joined, "improved") || !strings.Contains(joined, "new benchmark") {
		t.Errorf("notes = %v, want improvement and new-benchmark notes", notes)
	}
}

// writeFixture writes a ledger JSON fixture through the same parser path the
// real pipeline uses (bench text -> parse -> JSON).
func writeFixture(t *testing.T, dir, name, benchText string) string {
	t.Helper()
	l, err := parse(bufio.NewScanner(strings.NewReader(benchText)))
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if err := writeLedger(f, l); err != nil {
		t.Fatal(err)
	}
	return path
}

const oldBenchText = `goos: linux
goarch: amd64
BenchmarkKernel-8   1000   1000 ns/op   0 B/op   0 allocs/op
BenchmarkSweep-8    500    30000 ns/op  128 B/op  2 allocs/op
`

// TestRunCompareEndToEnd drives the subcommand exactly as CI does: fixture
// ledgers on disk, flags after positionals, exit codes checked.
func TestRunCompareEndToEnd(t *testing.T) {
	dir := t.TempDir()
	oldPath := writeFixture(t, dir, "old.json", oldBenchText)

	cases := []struct {
		name     string
		newText  string
		args     []string
		wantCode int
		wantOut  string
	}{
		{
			name: "clean",
			newText: `BenchmarkKernel-8 1000 1100 ns/op 0 B/op 0 allocs/op
BenchmarkSweep-8 500 29000 ns/op 128 B/op 2 allocs/op
`,
			wantCode: 0,
			wantOut:  "ok",
		},
		{
			name: "time regression fails",
			newText: `BenchmarkKernel-8 1000 1000 ns/op 0 B/op 0 allocs/op
BenchmarkSweep-8 500 90000 ns/op 128 B/op 2 allocs/op
`,
			wantCode: 1,
			wantOut:  "time regressed",
		},
		{
			name: "zero-alloc kernel fails",
			newText: `BenchmarkKernel-8 1000 1000 ns/op 16 B/op 1 allocs/op
BenchmarkSweep-8 500 30000 ns/op 128 B/op 2 allocs/op
`,
			wantCode: 1,
			wantOut:  "zero-alloc",
		},
		{
			name: "looser trailing threshold passes",
			newText: `BenchmarkKernel-8 1000 1400 ns/op 0 B/op 0 allocs/op
BenchmarkSweep-8 500 30000 ns/op 128 B/op 2 allocs/op
`,
			args:     []string{"-threshold", "1.5"},
			wantCode: 0,
			wantOut:  "ok",
		},
		{
			name: "speedup satisfied passes with note",
			newText: `BenchmarkKernel-8 1000 1000 ns/op 0 B/op 0 allocs/op
BenchmarkSweep-8 500 30000 ns/op 128 B/op 2 allocs/op
`,
			args:     []string{"-min-speedup", "BenchmarkSweep/BenchmarkKernel:5"},
			wantCode: 0,
			wantOut:  "speedup 30.00x",
		},
		{
			name: "collapsed speedup fails",
			newText: `BenchmarkKernel-8 1000 1000 ns/op 0 B/op 0 allocs/op
BenchmarkSweep-8 500 30000 ns/op 128 B/op 2 allocs/op
`,
			args:     []string{"-min-speedup", "BenchmarkSweep/BenchmarkKernel:50"},
			wantCode: 1,
			wantOut:  "speedup collapsed to 30.00x",
		},
		{
			name: "speedup over missing benchmark fails",
			newText: `BenchmarkKernel-8 1000 1000 ns/op 0 B/op 0 allocs/op
BenchmarkSweep-8 500 30000 ns/op 128 B/op 2 allocs/op
`,
			args:     []string{"-min-speedup", "BenchmarkGone/BenchmarkKernel:5"},
			wantCode: 1,
			wantOut:  "benchmark missing",
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			newPath := writeFixture(t, t.TempDir(), "new.json", "goos: linux\n"+tc.newText)
			var out, errw strings.Builder
			args := append([]string{oldPath, newPath}, tc.args...)
			code := runCompare(args, &out, &errw)
			if code != tc.wantCode {
				t.Fatalf("exit code %d, want %d\nstdout:\n%s\nstderr:\n%s", code, tc.wantCode, out.String(), errw.String())
			}
			if !strings.Contains(out.String(), tc.wantOut) {
				t.Errorf("stdout %q does not contain %q", out.String(), tc.wantOut)
			}
		})
	}
}

func TestRunCompareUsageErrors(t *testing.T) {
	var out, errw strings.Builder
	if code := runCompare([]string{"only-one.json"}, &out, &errw); code != 2 {
		t.Errorf("missing args exit = %d, want 2", code)
	}
	if code := runCompare([]string{"a.json", "b.json", "-threshold", "0.5"}, &out, &errw); code != 2 {
		t.Errorf("bad threshold exit = %d, want 2", code)
	}
	if code := runCompare([]string{"/nonexistent/a.json", "/nonexistent/b.json"}, &out, &errw); code != 2 {
		t.Errorf("missing file exit = %d, want 2", code)
	}
	for _, bad := range []string{"NoColon", "OnlyOneName:5", "A/B:0.5", "A/B:x"} {
		if code := runCompare([]string{"-min-speedup", bad, "a.json", "b.json"}, &out, &errw); code != 2 {
			t.Errorf("malformed -min-speedup %q exit = %d, want 2", bad, code)
		}
	}
}

func TestParseStripsGomaxprocsSuffix(t *testing.T) {
	l, err := parse(bufio.NewScanner(strings.NewReader(oldBenchText)))
	if err != nil {
		t.Fatal(err)
	}
	if l.Benchmarks[0].Name != "BenchmarkKernel" {
		t.Errorf("name = %q, want suffix stripped", l.Benchmarks[0].Name)
	}
	if l.Goos != "linux" || l.Goarch != "amd64" {
		t.Errorf("platform fields lost: %+v", l)
	}
}
