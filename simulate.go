package bicoop

// simulate.go — the unified Monte Carlo entry point. The three historical
// simulators (Rayleigh-fading outage, bit-true TDBC over erasure links,
// bit-true compute-and-forward MABC) diverged in how they took trial
// counts, seeds, worker pools and reported progress; Engine.Simulate folds
// them behind one SimSpec with a single run contract: Trials/Seed/Workers
// and the Progress callback live on the spec, the context bounds the run,
// and cancellation stops the shard loops within one trial, returning the
// statistics over the trials completed so far.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"bicoop/internal/protocols"
	"bicoop/internal/sim"
	"bicoop/internal/sweep"
)

// ProgressFunc observes a simulation's completed trial count. Invocations
// are serialized with the count update, so implementations need no locking
// and done is strictly increasing; it is cumulative across the whole run
// and may advance by more than one between calls (workers batch their
// updates).
type ProgressFunc func(done, total int)

// FadingSpec selects the quasi-static Rayleigh fading Monte Carlo: per
// block, every link fades independently around the scenario's mean gains, a
// CSI-adaptive system re-solves each protocol's duration LP, and the fixed
// Target rate pair is probed for outage.
type FadingSpec struct {
	// Scenario gives the mean gains and power.
	Scenario Scenario
	// Protocols to simulate; empty defaults to MABC, TDBC, HBC.
	Protocols []Protocol
	// Target is the fixed rate pair for outage probability (zero disables).
	Target RatePoint
}

// BitTrueTDBCSpec selects the bit-true TDBC simulator: random linear codes,
// overheard side information, XOR network coding at the relay,
// Gaussian-elimination decoding over a three-link erasure network.
type BitTrueTDBCSpec struct {
	// Links is the erasure network.
	Links ErasureLinks
	// Rates is the target message rate pair in bits per channel use.
	Rates RatePoint
	// Durations optionally pins the three phase durations (summing to 1).
	// Nil derives them from the Theorem 3 inner bound; rates outside the
	// bound then return an error.
	Durations []float64
	// BlockLength is the number of channel uses per block.
	BlockLength int
}

// BitTrueMABCSpec selects the bit-true compute-and-forward MABC simulator:
// both terminals transmit parities of their messages over a shared linear
// code simultaneously, the relay decodes only the XOR and rebroadcasts it.
type BitTrueMABCSpec struct {
	// Links is the MAC/broadcast erasure network.
	Links MABCComputeForwardLinks
	// Rate is the common per-terminal message rate in bits per channel use.
	Rate float64
	// Durations are the two phase durations; nil derives the optimal split.
	Durations []float64
	// BlockLength is the number of channel uses per block.
	BlockLength int
}

// SimSpec describes one simulation run for Engine.Simulate. Exactly one of
// Fading, BitTrueTDBC and BitTrueMABC must be set; the remaining fields are
// the run contract shared by every simulator.
type SimSpec struct {
	// Fading, BitTrueTDBC, BitTrueMABC select the simulator (exactly one).
	Fading      *FadingSpec
	BitTrueTDBC *BitTrueTDBCSpec
	BitTrueMABC *BitTrueMABCSpec

	// Trials is the number of independent blocks. Zero selects the fading
	// simulator's default (2000); the bit-true simulators have no default
	// and reject zero. Negative is always ErrInvalidTrials.
	Trials int
	// Seed drives the run deterministically for a fixed (Seed, Trials,
	// Workers) triple.
	Seed int64
	// Workers bounds the goroutines sharding the trials; zero uses the
	// engine's WithWorkers default, which itself defaults to GOMAXPROCS.
	// Changing Workers reshards the per-trial random streams.
	Workers int
	// Progress, when non-nil, observes the cumulative completed trial
	// count. Invocations are serialized by the engine.
	Progress ProgressFunc
}

// SimResult is the outcome of Engine.Simulate. Exactly one of Fading and
// BitTrue is populated, mirroring the spec.
type SimResult struct {
	// Fading holds per-protocol fading statistics for FadingSpec runs.
	Fading map[Protocol]FadingStats
	// BitTrue holds decoding counts for the bit-true runs.
	BitTrue *BitTrueResult
	// Trials is the number of trials actually completed — the configured
	// count unless the context was cancelled mid-run.
	Trials int
	// Durations echoes the phase split used by the bit-true simulators
	// (after LP derivation if the spec left it nil).
	Durations []float64
}

// validate checks the spec's shape and static fields without running it —
// the shared up-front pass of Simulate and SimulateBatch, so a malformed
// campaign fails before any trial runs.
func (spec SimSpec) validate() error {
	if spec.Trials < 0 {
		return fmt.Errorf("%w: %d", ErrInvalidTrials, spec.Trials)
	}
	variants := 0
	for _, set := range [...]bool{spec.Fading != nil, spec.BitTrueTDBC != nil, spec.BitTrueMABC != nil} {
		if set {
			variants++
		}
	}
	if variants != 1 {
		return fmt.Errorf("%w: %d simulators selected, want exactly 1", ErrInvalidSimSpec, variants)
	}
	switch {
	case spec.Fading != nil:
		fs := spec.Fading
		if err := fs.Scenario.Validate(); err != nil {
			return err
		}
		if err := validateRatePoint(fs.Target); err != nil {
			return err
		}
		for _, p := range fs.Protocols {
			if _, err := p.internal(); err != nil {
				return err
			}
		}
	case spec.BitTrueTDBC != nil:
		ts := spec.BitTrueTDBC
		return validateBitTrueCommon(spec.Trials, ts.BlockLength, ts.Rates.Ra, ts.Rates.Rb)
	default:
		ms := spec.BitTrueMABC
		return validateBitTrueCommon(spec.Trials, ms.BlockLength, ms.Rate)
	}
	return nil
}

// Simulate runs the simulator selected by spec under the common run
// contract. Cancelling ctx stops the worker pool within one trial (far
// finer than shard granularity); the statistics over the trials completed
// so far are returned alongside the context error, so callers can report
// partial results.
func (e *Engine) Simulate(ctx context.Context, spec SimSpec) (SimResult, error) {
	if err := spec.validate(); err != nil {
		return SimResult{}, err
	}
	workers := spec.Workers
	if workers <= 0 {
		workers = e.workers
	}
	return e.runSim(ctx, spec, workers)
}

// runSim dispatches a validated spec to its simulator with a resolved
// worker count.
func (e *Engine) runSim(ctx context.Context, spec SimSpec, workers int) (SimResult, error) {
	progress := spec.Progress
	switch {
	case spec.Fading != nil:
		return e.simulateFading(ctx, spec, workers, progress)
	case spec.BitTrueTDBC != nil:
		return e.simulateBitTrueTDBC(ctx, spec, workers, progress)
	default:
		return e.simulateBitTrueMABC(ctx, spec, workers, progress)
	}
}

// simWrap converts a simulator error: context cancellation passes through
// (so errors.Is(err, context.Canceled) works at the facade), everything
// else is prefixed.
func simWrap(err error) error {
	if err == nil {
		return nil
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return err
	}
	return fmt.Errorf("bicoop: %w", err)
}

// The simulate* helpers below assume a spec that already passed validate()
// — both entry points (Simulate and SimulateBatch) run it up front, so the
// static checks live in exactly one place.

func (e *Engine) simulateFading(ctx context.Context, spec SimSpec, workers int, progress ProgressFunc) (SimResult, error) {
	fs := spec.Fading
	protosPub := fs.Protocols
	if len(protosPub) == 0 {
		protosPub = []Protocol{MABC, TDBC, HBC}
	}
	protosInt := make([]protocols.Protocol, 0, len(protosPub))
	for _, p := range protosPub {
		ip, err := p.internal()
		if err != nil {
			return SimResult{}, err
		}
		protosInt = append(protosInt, ip)
	}
	trials := spec.Trials
	if trials == 0 {
		trials = 2000
	}
	is := fs.Scenario.internal()
	res, runErr := sim.RunOutage(ctx, sim.OutageConfig{
		Mean:      is.G,
		P:         is.P,
		Protocols: protosInt,
		Target:    protocols.RatePair{Ra: fs.Target.Ra, Rb: fs.Target.Rb},
		Trials:    trials,
		Seed:      spec.Seed,
		Workers:   workers,
		Progress:  progress,
	})
	if runErr != nil && res.ByProtocol == nil {
		return SimResult{}, simWrap(runErr)
	}
	out := SimResult{Fading: make(map[Protocol]FadingStats, len(protosPub))}
	for i, p := range protosPub {
		st := res.ByProtocol[protosInt[i]]
		out.Fading[p] = FadingStats{MeanOptSumRate: st.MeanOptSumRate, OutageProb: st.OutageProb}
		out.Trials = st.Trials
	}
	return out, simWrap(runErr)
}

// validateBitTrueCommon checks the fields shared by both bit-true specs.
func validateBitTrueCommon(trials, blockLength int, rates ...float64) error {
	if trials <= 0 {
		return fmt.Errorf("%w: bit-true simulation needs a positive Trials, got %d", ErrInvalidTrials, trials)
	}
	if blockLength <= 0 {
		return fmt.Errorf("%w: %d", ErrInvalidBlockLength, blockLength)
	}
	for _, r := range rates {
		if math.IsNaN(r) || math.IsInf(r, 0) || r < 0 {
			return fmt.Errorf("%w: %g", ErrInvalidRates, r)
		}
	}
	return nil
}

func (e *Engine) simulateBitTrueTDBC(ctx context.Context, spec SimSpec, workers int, progress ProgressFunc) (SimResult, error) {
	ts := spec.BitTrueTDBC
	res, runErr := sim.RunBitTrueTDBC(ctx, sim.BitTrueConfig{
		Net:         sim.ErasureNetwork{EpsAR: ts.Links.EpsAR, EpsBR: ts.Links.EpsBR, EpsAB: ts.Links.EpsAB},
		Rates:       protocols.RatePair{Ra: ts.Rates.Ra, Rb: ts.Rates.Rb},
		Durations:   ts.Durations,
		BlockLength: ts.BlockLength,
		Trials:      spec.Trials,
		Seed:        spec.Seed,
		Workers:     workers,
		Progress:    progress,
	})
	if runErr != nil && res.Durations == nil {
		return SimResult{}, simWrap(runErr)
	}
	return SimResult{
		BitTrue: &BitTrueResult{
			SuccessProb:      res.SuccessProb,
			RelayFailures:    res.RelayFailures,
			TerminalFailures: res.TerminalFailures,
		},
		Trials:    res.Trials,
		Durations: res.Durations,
	}, simWrap(runErr)
}

// CampaignSpec declares a simulation campaign: many SimSpecs — a waterfall
// scale axis, a seed family, an SNR family, or any mix of simulators —
// executed as one sharded batch over the same generic core that runs the
// analytic grids.
type CampaignSpec struct {
	// Specs are the runs, executed with deterministic per-spec seeds (each
	// spec's own Seed) so the campaign's merged statistics are bit-identical
	// for every outer worker count.
	Specs []SimSpec
	// Workers bounds how many runs execute concurrently (the outer pool);
	// zero uses the engine's WithWorkers default, then GOMAXPROCS. Inside a
	// campaign, a spec whose own Workers field is zero runs its trials on
	// ONE goroutine — not the engine default — so resharding the campaign
	// (or moving it across machines) can never change a per-trial random
	// stream. Set a spec's Workers explicitly to shard its trials; results
	// then stay deterministic per (Seed, Trials, Workers) as usual.
	//
	// Progress caveat: each spec's Progress callback keeps its serialized,
	// strictly-increasing contract within that spec's run, but with
	// Workers > 1 DIFFERENT specs run concurrently — a single callback
	// shared across specs is invoked from multiple goroutines at once and
	// must be goroutine-safe. Give each spec its own Progress (or
	// aggregate through the streamed yield, which is always serialized).
	Workers int
	// Start resumes the campaign past the first Start specs: an earlier
	// run already completed and delivered them, so they are neither re-run
	// nor yielded again. The returned slice still spans every spec; entries
	// below Start are zero values (their results live with the run that
	// produced them). Feed a Checkpointer's last saved value back here.
	Start int
	// Checkpoint, when non-nil, observes the completed-run watermark as it
	// advances (see Checkpointer). A Save error halts the campaign.
	Checkpoint Checkpointer
	// Retry, when non-nil, re-runs transiently failed simulation runs (see
	// RetryPolicy). Runs are seed-deterministic, so a retry reproduces
	// exactly the statistics an untroubled first attempt would have.
	Retry *RetryPolicy
}

// Validate checks the campaign without running it: at least one spec, every
// spec statically valid, and the resume offset non-negative. SimulateBatch
// runs the same checks; wire-facing callers (the bccd job service) validate
// at admission time.
func (spec CampaignSpec) Validate() error {
	if len(spec.Specs) == 0 {
		return fmt.Errorf("%w: campaign with no specs", ErrInvalidSimSpec)
	}
	for i, s := range spec.Specs {
		if err := s.validate(); err != nil {
			return fmt.Errorf("spec %d: %w", i, err)
		}
	}
	return validateResume(spec.Start, ErrInvalidSimSpec)
}

// SimulateBatch executes a campaign. Completed results are streamed to
// yield (when non-nil) in spec order regardless of completion order, and
// the collected results are returned in the same order. A spec error halts
// the campaign with the first error in spec order; cancelling ctx stops
// every in-flight run within one trial. On early stop the returned slice
// holds the contiguous prefix of fully completed runs (a run interrupted
// mid-flight is discarded — campaign results are always whole runs).
func (e *Engine) SimulateBatch(ctx context.Context, spec CampaignSpec, yield func(i int, r SimResult) error) ([]SimResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	results := make([]SimResult, len(spec.Specs))
	var yieldErr error
	// ChunkSize 1: each point is a whole simulation run, so the outer pool
	// pipelines runs individually. The specs are mutually independent and
	// individually deterministic, so — unlike the warm-started LP grids —
	// no per-chunk state exists and any chunking would only serialize runs.
	// (With ChunkSize 1 the checkpoint watermark and Start are plain spec
	// counts — no chunk-boundary flooring.)
	prefix, err := sweep.RunCore(ctx, len(spec.Specs),
		sweep.CoreOptions{
			Workers:    e.campaignWorkers(spec.Workers),
			ChunkSize:  1,
			Start:      spec.Start,
			Checkpoint: spec.Checkpoint,
			Retry:      spec.Retry.internal(),
		},
		sweep.Hooks[struct{}]{},
		func(_ struct{}, lo, hi int) error {
			for i := lo; i < hi; i++ {
				s := spec.Specs[i]
				workers := s.Workers
				if workers <= 0 {
					workers = 1 // campaign determinism default (see CampaignSpec.Workers)
				}
				res, err := e.runSim(ctx, s, workers)
				if err != nil {
					return fmt.Errorf("spec %d: %w", i, err)
				}
				results[i] = res
			}
			return nil
		},
		func(lo, hi int) error {
			if yield == nil {
				return nil
			}
			for i := lo; i < hi; i++ {
				if err := yield(i, results[i]); err != nil {
					yieldErr = err
					return err
				}
			}
			return nil
		})
	switch {
	case err == nil:
		return results[:prefix], nil
	case yieldErr != nil && errors.Is(err, yieldErr):
		return results[:prefix], yieldErr // the caller's own error, verbatim
	default:
		return results[:prefix], simWrap(translateResilience(err))
	}
}

// campaignWorkers resolves the outer pool size of a campaign.
func (e *Engine) campaignWorkers(workers int) int {
	if workers > 0 {
		return workers
	}
	return e.workers
}

func (e *Engine) simulateBitTrueMABC(ctx context.Context, spec SimSpec, workers int, progress ProgressFunc) (SimResult, error) {
	ms := spec.BitTrueMABC
	res, runErr := sim.RunBitTrueMABC(ctx, sim.MABCBitTrueConfig{
		EpsMAC: ms.Links.EpsMAC, EpsRA: ms.Links.EpsRA, EpsRB: ms.Links.EpsRB,
		Rate:        ms.Rate,
		Durations:   ms.Durations,
		BlockLength: ms.BlockLength,
		Trials:      spec.Trials,
		Seed:        spec.Seed,
		Workers:     workers,
		Progress:    progress,
	})
	if runErr != nil && res.Durations == nil {
		return SimResult{}, simWrap(runErr)
	}
	return SimResult{
		BitTrue: &BitTrueResult{
			SuccessProb:      res.SuccessProb,
			RelayFailures:    res.RelayFailures,
			TerminalFailures: res.TerminalFailures,
		},
		Trials:    res.Trials,
		Durations: res.Durations,
	}, simWrap(runErr)
}
