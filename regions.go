package bicoop

// regions.go — the public face of the rate-region subsystem. A region curve
// (one curve of the paper's Fig 4) is a support-function sweep: one
// weighted-rate LP per support direction. RegionBatchSpec declares a whole
// family of curves — scenarios × protocol bounds — and Engine.RegionBatch
// streams the completed polygons in enumeration order, with the flattened
// angle axis sharded by the same chunked core as the sum-rate grids
// (internal/sweep): per-worker warm evaluators reset at fixed chunk
// boundaries, bounded streaming backpressure, and cancellation within one
// chunk. Results are bit-identical for every Workers setting.

import (
	"context"
	"errors"
	"fmt"

	"bicoop/internal/sweep"
)

// RegionOptions tunes a region computation.
type RegionOptions struct {
	// Angles is the number of support directions swept across the first
	// quadrant; more angles recover more polygon vertices exactly.
	// Non-positive defaults to 181, the resolution of the paper's Fig 4
	// curves. The two axis directions are always solved exactly on top of
	// the sweep, so the region's maximal per-user rates are exact at every
	// resolution.
	Angles int
	// Workers bounds the goroutines sharding the support-direction axis;
	// zero uses the engine's WithWorkers default, which itself defaults to
	// GOMAXPROCS. Results are bit-identical for every value.
	Workers int
}

// RegionCurve selects one protocol bound whose region is computed for every
// scenario of a RegionBatchSpec.
type RegionCurve struct {
	Protocol Protocol
	Bound    Bound
}

// RegionBatchSpec declares a batch of region computations: the cross
// product Scenarios × Curves, every curve swept at the same resolution.
type RegionBatchSpec struct {
	// Scenarios are the evaluation points; at least one is required.
	Scenarios []Scenario
	// Curves are the protocol bounds; at least one is required.
	Curves []RegionCurve
	// Angles is the per-curve support-direction count (see RegionOptions).
	Angles int
	// Workers bounds the goroutines sharding the flattened angle axis;
	// zero uses the engine's WithWorkers default. Results are bit-identical
	// for every value.
	Workers int
	// Start resumes the batch past the first Start curves (scenario-major
	// enumeration): an earlier run already yielded them, so they are not
	// recomputed or yielded again. Feed a Checkpointer's last saved value
	// back here.
	Start int
	// Checkpoint, when non-nil, observes the yielded-curve watermark as it
	// advances — whole curves, the unit RegionBatch yields in (see
	// Checkpointer). A Save error stops the batch.
	Checkpoint Checkpointer
	// Retry, when non-nil, re-runs transiently failed chunks of the angle
	// axis on fresh evaluator state (see RetryPolicy).
	Retry *RetryPolicy
}

// Size returns the number of curves the batch will yield.
func (spec RegionBatchSpec) Size() int { return len(spec.Scenarios) * len(spec.Curves) }

// Validate checks the spec without running it: both axes non-empty, every
// scenario finite, every curve's enums known, and the resume offset
// non-negative. Engine.RegionBatch runs the same checks; wire-facing callers
// (the bccd job service) validate at admission time.
func (spec RegionBatchSpec) Validate() error {
	if len(spec.Scenarios) == 0 || len(spec.Curves) == 0 {
		return fmt.Errorf("%w: %d scenarios x %d curves (both axes need at least one entry)",
			ErrInvalidRegionSpec, len(spec.Scenarios), len(spec.Curves))
	}
	if err := validateResume(spec.Start, ErrInvalidRegionSpec); err != nil {
		return err
	}
	for i, s := range spec.Scenarios {
		if err := s.Validate(); err != nil {
			return fmt.Errorf("scenario %d: %w", i, err)
		}
	}
	for i, c := range spec.Curves {
		if _, _, err := resolveEnums(c.Protocol, c.Bound); err != nil {
			return fmt.Errorf("curve %d: %w", i, err)
		}
	}
	return nil
}

// RegionBatchPoint is one completed curve of a region batch, carrying its
// batch coordinates alongside the polygon.
type RegionBatchPoint struct {
	// ScenarioIdx and CurveIdx index the spec's axes (scenario-major
	// enumeration: all curves of scenario 0, then scenario 1, ...).
	ScenarioIdx, CurveIdx int
	// Scenario and Curve echo the spec entries that produced Region.
	Scenario Scenario
	Curve    RegionCurve
	// Region is the computed rate region.
	Region Region
}

// RegionBatch computes every curve of the batch and streams each completed
// region to yield in enumeration order (scenario outer, curve inner). The
// support-direction axis of the whole batch is flattened and sharded across
// spec.Workers goroutines exactly like the sum-rate grids — fixed chunk
// boundaries, per-worker warm evaluators — so the polygons are bit-identical
// for every worker count. A non-nil error from yield stops the batch and is
// returned. Cancelling ctx stops the workers within one chunk of LP solves;
// curves yielded before the stop are complete and valid.
func (e *Engine) RegionBatch(ctx context.Context, spec RegionBatchSpec, yield func(RegionBatchPoint) error) error {
	if yield == nil {
		return fmt.Errorf("%w: nil yield callback", ErrInvalidRegionSpec)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	ispec := sweep.RegionSpec{
		Angles:     spec.Angles,
		Start:      spec.Start,
		Checkpoint: spec.Checkpoint,
	}
	for _, s := range spec.Scenarios {
		ispec.Scenarios = append(ispec.Scenarios, sweep.Scenario(s))
	}
	for _, c := range spec.Curves {
		// Validate resolved these already; a failure here is unreachable.
		ip, ib, _ := resolveEnums(c.Protocol, c.Bound)
		ispec.Curves = append(ispec.Curves, sweep.RegionCurve{Proto: ip, Bound: ib})
	}
	opts := e.sweepOpts(spec.Workers)
	opts.Retry = spec.Retry.internal()
	var yieldErr error
	err := sweep.RegionBatch(ctx, ispec, opts, func(r sweep.RegionResult) error {
		pub := RegionBatchPoint{
			ScenarioIdx: r.ScenarioIdx,
			CurveIdx:    r.CurveIdx,
			Scenario:    spec.Scenarios[r.ScenarioIdx],
			Curve:       spec.Curves[r.CurveIdx],
			Region:      Region{poly: r.Polygon},
		}
		if err := yield(pub); err != nil {
			yieldErr = err
			return err
		}
		return nil
	})
	switch {
	case err == nil:
		return nil
	case yieldErr != nil && errors.Is(err, yieldErr):
		return yieldErr // the caller's own error, returned verbatim
	case errors.Is(err, sweep.ErrSpec):
		return fmt.Errorf("%w: %w", ErrInvalidRegionSpec, err)
	default:
		return fmt.Errorf("bicoop: %w", translateResilience(err))
	}
}

// Region computes the full rate region of a protocol bound (one curve of
// Fig 4). The support-direction sweep is sharded across opts.Workers
// goroutines (default: the engine's WithWorkers setting, then GOMAXPROCS)
// with the same determinism contract as every grid path: the polygon is
// bit-identical for every worker count. Cancelling ctx stops the sweep
// within one chunk of LP solves.
func (e *Engine) Region(ctx context.Context, p Protocol, b Bound, s Scenario, opts RegionOptions) (Region, error) {
	var out Region
	err := e.RegionBatch(ctx, RegionBatchSpec{
		Scenarios: []Scenario{s},
		Curves:    []RegionCurve{{Protocol: p, Bound: b}},
		Angles:    opts.Angles,
		Workers:   opts.Workers,
	}, func(pt RegionBatchPoint) error {
		out = pt.Region
		return nil
	})
	if err != nil {
		return Region{}, err
	}
	return out, nil
}
