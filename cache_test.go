package bicoop_test

// cache_test.go — the result cache's public contract: cache-on output is
// bit-identical to cache-off output, for every worker count, whether a
// point hits or misses. The references here are always COLD solves —
// Engine.SumRate singles or another cache-enabled run — because cached
// runs disable LP warm starting (see internal/cache's package doc): a
// degenerate LP has several optimal vertices, and the warm pivot path may
// pick a different one than the cold path, so warm-batch rates are NOT
// comparable bitwise for the LP-backed protocols (Naive4, HBC). The
// closed-form protocols (DT, MABC, TDBC) are history-free, so for them
// cached output must equal even the warm uncached batch bit for bit.

import (
	"context"
	"math/rand"
	"sync"
	"testing"

	"bicoop"
)

// allBounds pairs every protocol with both bounds.
func allBounds() []bicoop.RegionCurve {
	var out []bicoop.RegionCurve
	for _, p := range bicoop.AllProtocols() {
		out = append(out,
			bicoop.RegionCurve{Protocol: p, Bound: bicoop.Inner},
			bicoop.RegionCurve{Protocol: p, Bound: bicoop.Outer})
	}
	return out
}

// sameResult compares two sum-rate results bit for bit (nil and empty
// duration slices are the same zero-phase answer).
func sameResult(a, b bicoop.SumRateResult) bool {
	if a.Sum != b.Sum || a.Point != b.Point || len(a.Durations) != len(b.Durations) {
		return false
	}
	for i := range a.Durations {
		if a.Durations[i] != b.Durations[i] {
			return false
		}
	}
	return true
}

// TestCachedSumRateMatchesUncached pins hit == miss == uncached for the
// singles path: a plain engine's SumRate is already a cold pooled solve,
// so the cached engine must reproduce it exactly, before and after the
// key is in the store.
func TestCachedSumRateMatchesUncached(t *testing.T) {
	plain := bicoop.NewEngine()
	cached := bicoop.NewEngine(bicoop.WithCache(1 << 12))
	for _, c := range allBounds() {
		for _, s := range grid(8) {
			want, wantErr := plain.SumRate(c.Protocol, c.Bound, s)
			miss, missErr := cached.SumRate(c.Protocol, c.Bound, s)
			hit, hitErr := cached.SumRate(c.Protocol, c.Bound, s)
			if (wantErr == nil) != (missErr == nil) || (wantErr == nil) != (hitErr == nil) {
				t.Fatalf("%v/%v: error mismatch: uncached %v, miss %v, hit %v",
					c.Protocol, c.Bound, wantErr, missErr, hitErr)
			}
			if wantErr != nil {
				continue
			}
			if !sameResult(want, miss) {
				t.Errorf("%v/%v %+v: miss differs from uncached: %+v vs %+v", c.Protocol, c.Bound, s, miss, want)
			}
			if !sameResult(want, hit) {
				t.Errorf("%v/%v %+v: hit differs from uncached: %+v vs %+v", c.Protocol, c.Bound, s, hit, want)
			}
		}
	}
	cs := cached.CacheStats()
	if cs.Hits == 0 || cs.Misses == 0 {
		t.Fatalf("test exercised no hits or no misses: %+v", cs)
	}
}

// TestCachedBatchBitIdenticalAcrossWorkers pins the tentpole contract at
// Workers 1, 2 and 7: a cached batch over a scenario stream with repeats
// returns the same bytes for every worker count, equal to the cached
// singles, and a rerun on a warm store (all hits) changes nothing.
func TestCachedBatchBitIdenticalAcrossWorkers(t *testing.T) {
	// Deliberate repeats: the 48-scenario stream has only 16 distinct
	// points, so hits and misses interleave within one batch.
	base := grid(16)
	scenarios := make([]bicoop.Scenario, 0, 48)
	for i := 0; i < 48; i++ {
		scenarios = append(scenarios, base[i%len(base)])
	}
	singles := bicoop.NewEngine(bicoop.WithCache(1 << 12))
	ctx := context.Background()
	for _, proto := range bicoop.AllProtocols() {
		var want []bicoop.SumRateResult
		for _, s := range scenarios {
			r, err := singles.SumRate(proto, bicoop.Inner, s)
			if err != nil {
				t.Fatal(err)
			}
			want = append(want, r)
		}
		for _, workers := range []int{1, 2, 7} {
			eng := bicoop.NewEngine(bicoop.WithCache(1<<12), bicoop.WithWorkers(workers))
			for pass := 0; pass < 2; pass++ { // pass 0 fills, pass 1 is all hits
				got, err := eng.SumRateBatch(ctx, proto, bicoop.Inner, scenarios)
				if err != nil {
					t.Fatal(err)
				}
				for i := range want {
					if !sameResult(got[i], want[i]) {
						t.Fatalf("%v workers=%d pass=%d point %d: %+v != %+v",
							proto, workers, pass, i, got[i], want[i])
					}
				}
			}
			// Fills is exact (one insert per distinct key — a racing
			// duplicate solve lands as an overwrite, not a fill); misses
			// can exceed the distinct count only through such races.
			cs := eng.CacheStats()
			if cs.Fills != uint64(len(base)) {
				t.Errorf("%v workers=%d: fills=%d, want %d distinct points", proto, workers, cs.Fills, len(base))
			}
			if total := uint64(2 * len(scenarios)); cs.Hits+cs.Misses != total {
				t.Errorf("%v workers=%d: hits+misses=%d, want %d lookups", proto, workers, cs.Hits+cs.Misses, total)
			}
		}
	}
}

// TestCachedFastPathMatchesWarmBatch pins that for the closed-form
// protocols (no LP, no pivot history) a cached batch equals the plain
// warm-started batch bit for bit — caching must be invisible there even
// against the warm reference.
func TestCachedFastPathMatchesWarmBatch(t *testing.T) {
	plain := bicoop.NewEngine()
	cached := bicoop.NewEngine(bicoop.WithCache(1 << 12))
	ctx := context.Background()
	scenarios := grid(64)
	for _, proto := range []bicoop.Protocol{bicoop.DT, bicoop.MABC, bicoop.TDBC} {
		want, err := plain.SumRateBatch(ctx, proto, bicoop.Inner, scenarios)
		if err != nil {
			t.Fatal(err)
		}
		got, err := cached.SumRateBatch(ctx, proto, bicoop.Inner, scenarios)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want {
			if !sameResult(got[i], want[i]) {
				t.Fatalf("%v point %d: cached %+v != warm uncached %+v", proto, i, got[i], want[i])
			}
		}
	}
}

// TestCachedRandomizedEquivalence is the seeded fuzz pass: random
// (protocol, bound, scenario) queries with repeats against one cached
// engine, every answer checked against an uncached engine, and the
// CacheStats accounting identities checked exactly at the end.
func TestCachedRandomizedEquivalence(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	plain := bicoop.NewEngine()
	cached := bicoop.NewEngine(bicoop.WithCache(1 << 12))
	curves := allBounds()
	// A small scenario pool guarantees repeats; quantization-identical
	// coordinates must land on the same entry.
	pool := make([]bicoop.Scenario, 12)
	for i := range pool {
		pool[i] = bicoop.Scenario{
			PowerDB: -5 + 25*rng.Float64(),
			GabDB:   -10 + 8*rng.Float64(),
			GarDB:   -2 + 4*rng.Float64(),
			GbrDB:   3 + 4*rng.Float64(),
		}
	}
	const queries = 400
	type query struct {
		p bicoop.Protocol
		b bicoop.Bound
		s bicoop.Scenario
	}
	distinct := map[query]bool{}
	for i := 0; i < queries; i++ {
		c := curves[rng.Intn(len(curves))]
		s := pool[rng.Intn(len(pool))]
		distinct[query{c.Protocol, c.Bound, s}] = true
		want, wantErr := plain.SumRate(c.Protocol, c.Bound, s)
		got, gotErr := cached.SumRate(c.Protocol, c.Bound, s)
		if (wantErr == nil) != (gotErr == nil) {
			t.Fatalf("query %d %v/%v: error mismatch %v vs %v", i, c.Protocol, c.Bound, wantErr, gotErr)
		}
		if wantErr == nil && !sameResult(got, want) {
			t.Fatalf("query %d %v/%v %+v: %+v != %+v", i, c.Protocol, c.Bound, s, got, want)
		}
	}
	cs := cached.CacheStats()
	if cs.Hits+cs.Misses != queries {
		t.Errorf("hits %d + misses %d != %d lookups", cs.Hits, cs.Misses, queries)
	}
	if cs.Misses != uint64(len(distinct)) || cs.Fills != uint64(len(distinct)) {
		t.Errorf("misses=%d fills=%d, want both == %d distinct queries", cs.Misses, cs.Fills, len(distinct))
	}
	if cs.Evictions != 0 {
		t.Errorf("evictions=%d below capacity, want 0", cs.Evictions)
	}
}

// TestCachedSweepMatchesCanonical pins SweepAll (including the erasure
// axis) on a cached engine against an independent cold cached run, and a
// warm-store rerun against the first pass.
func TestCachedSweepMatchesCanonical(t *testing.T) {
	spec := bicoop.SweepSpec{
		Base:     bicoop.Scenario{GabDB: -7, GarDB: 0, GbrDB: 5},
		PowersDB: []float64{0, 5, 10},
		Erasures: []bicoop.ErasureLinks{{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6}},
		Workers:  2,
	}
	ctx := context.Background()
	first := bicoop.NewEngine(bicoop.WithCache(1 << 12))
	second := bicoop.NewEngine(bicoop.WithCache(1<<12), bicoop.WithWorkers(7))
	a, err := first.SweepAll(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	b, err := second.SweepAll(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	rerun, err := first.SweepAll(ctx, spec) // served from the warm store
	if err != nil {
		t.Fatal(err)
	}
	if cs := first.CacheStats(); cs.Hits == 0 {
		t.Fatalf("rerun recorded no hits: %+v", cs)
	}
	for i := range a {
		if !sameResult(a[i].Result, b[i].Result) {
			t.Errorf("point %d: independent cold cached runs differ: %+v vs %+v", i, a[i].Result, b[i].Result)
		}
		if !sameResult(a[i].Result, rerun[i].Result) {
			t.Errorf("point %d: warm-store rerun differs: %+v vs %+v", i, rerun[i].Result, a[i].Result)
		}
	}
}

// TestCachedRegionMatchesCanonical pins RegionBatch vertex caching: two
// independent cached engines at different worker counts and a warm-store
// rerun must produce identical polygons.
func TestCachedRegionMatchesCanonical(t *testing.T) {
	spec := bicoop.RegionBatchSpec{
		Scenarios: []bicoop.Scenario{{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}},
		Curves:    allBounds(),
		Angles:    31,
	}
	ctx := context.Background()
	collect := func(eng *bicoop.Engine, workers int) [][]bicoop.RatePoint {
		s := spec
		s.Workers = workers
		var out [][]bicoop.RatePoint
		if err := eng.RegionBatch(ctx, s, func(pt bicoop.RegionBatchPoint) error {
			out = append(out, pt.Region.Vertices())
			return nil
		}); err != nil {
			t.Fatal(err)
		}
		return out
	}
	first := bicoop.NewEngine(bicoop.WithCache(1 << 13))
	a := collect(first, 1)
	b := collect(bicoop.NewEngine(bicoop.WithCache(1<<13)), 7)
	rerun := collect(first, 2)
	if cs := first.CacheStats(); cs.Hits == 0 {
		t.Fatalf("rerun recorded no hits: %+v", cs)
	}
	for i := range a {
		if len(a[i]) != len(b[i]) || len(a[i]) != len(rerun[i]) {
			t.Fatalf("curve %d: vertex counts differ: %d cold, %d cold-w7, %d warm", i, len(a[i]), len(b[i]), len(rerun[i]))
		}
		for j := range a[i] {
			if a[i][j] != b[i][j] || a[i][j] != rerun[i][j] {
				t.Fatalf("curve %d vertex %d: %v vs %v vs %v", i, j, a[i][j], b[i][j], rerun[i][j])
			}
		}
	}
}

// TestCachedConcurrentReaders hammers one cached engine from concurrent
// goroutines mixing hits and misses; every result must equal the cold
// reference. Runs under -race in CI.
func TestCachedConcurrentReaders(t *testing.T) {
	scenarios := grid(32)
	plain := bicoop.NewEngine()
	want := make([]bicoop.SumRateResult, len(scenarios))
	for i, s := range scenarios {
		r, err := plain.SumRate(bicoop.HBC, bicoop.Inner, s)
		if err != nil {
			t.Fatal(err)
		}
		want[i] = r
	}
	cached := bicoop.NewEngine(bicoop.WithCache(1 << 12))
	var wg sync.WaitGroup
	errs := make(chan error, 8)
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 20; iter++ {
				i := rng.Intn(len(scenarios))
				got, err := cached.SumRate(bicoop.HBC, bicoop.Inner, scenarios[i])
				if err != nil {
					errs <- err
					return
				}
				if !sameResult(got, want[i]) {
					t.Errorf("goroutine %d: point %d: %+v != %+v", g, i, got, want[i])
					return
				}
			}
		}(g)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}
