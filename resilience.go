package bicoop

// resilience.go — the public face of the resilience layer in internal/sweep.
// Long sweeps and campaigns are the workloads the library exists for, and at
// production scale they meet transient failure: a flaky allocator, an
// evicted node, a workload panic. The facade exposes the three resilience
// primitives on every streaming spec (SweepSpec, RegionBatchSpec,
// CampaignSpec):
//
//   - RetryPolicy re-runs a failed chunk with fresh worker state, with
//     capped exponential backoff and deterministic jitter — a retried chunk
//     produces results bit-identical to a first-attempt success, because
//     worker state is recreated through the same hooks that built it;
//   - Checkpointer observes the resume watermark (the contiguous prefix of
//     delivered results) as it advances, and the spec's Start field resumes
//     a later run past it — the concatenation of the two runs' yields is
//     byte-identical to an uninterrupted run;
//   - workload panics are contained per chunk and surfaced as a *ChunkError
//     wrapping a *PanicError instead of crashing the process.
//
// See the "Resilience" section of the package documentation for the full
// recipe.

import (
	"errors"
	"fmt"
	"io/fs"
	"os"
	"strconv"
	"strings"
	"time"

	"bicoop/internal/sweep"
)

// RetryPolicy re-runs failed chunks of a sweep, region batch or campaign.
// Between attempts the failed worker's state is torn down and recreated (a
// pooled evaluator is surrendered and a fresh one leased), so a retried
// chunk is indistinguishable from one that succeeded first try and the
// bit-identical-across-Workers guarantee survives retries. Context
// cancellation and deadline expiry are never retried.
type RetryPolicy struct {
	// MaxAttempts bounds the tries per chunk (first run included);
	// non-positive means 3.
	MaxAttempts int
	// BaseDelay is the wait before the first retry; each further retry
	// doubles it, capped at MaxDelay (when positive). The actual delay adds
	// up to 50% deterministic jitter derived from the chunk index, so
	// concurrent retries de-synchronize identically on every run. Zero
	// means retry immediately.
	BaseDelay time.Duration
	MaxDelay  time.Duration
	// IsTransient classifies errors worth retrying; nil retries every
	// chunk error (context cancellation excepted).
	IsTransient func(error) bool
}

// internal converts to the core policy; nil stays nil (fail fast).
func (p *RetryPolicy) internal() *sweep.RetryPolicy {
	if p == nil {
		return nil
	}
	return &sweep.RetryPolicy{
		MaxAttempts: p.MaxAttempts,
		BaseDelay:   p.BaseDelay,
		MaxDelay:    p.MaxDelay,
		IsTransient: p.IsTransient,
	}
}

// Checkpointer persists the resume watermark of a streaming run: the length
// of the contiguous prefix of results already delivered to the caller. Save
// is invoked from the yielding goroutine each time the watermark advances —
// after the corresponding yields returned, so a saved watermark never
// overstates what the caller received. A Save error halts the run.
//
// Watermark units follow the spec's yields: grid points for Engine.Sweep,
// whole curves for Engine.RegionBatch, completed runs for
// Engine.SimulateBatch. Feed the last saved value back as the spec's Start
// field to resume.
type Checkpointer interface {
	Save(watermark int) error
}

// FileCheckpoint is a Checkpointer that stores the watermark in a file,
// atomically (write-temp-then-rename), so a crash mid-save leaves the
// previous watermark intact. The zero value is unusable; set Path.
type FileCheckpoint struct {
	// Path is the checkpoint file. Saves write Path+".tmp" and rename.
	Path string
}

// Save atomically replaces the checkpoint file with the new watermark.
func (c *FileCheckpoint) Save(watermark int) error {
	tmp := c.Path + ".tmp"
	if err := os.WriteFile(tmp, []byte(strconv.Itoa(watermark)+"\n"), 0o644); err != nil {
		return err
	}
	return os.Rename(tmp, c.Path)
}

// Load reads the last saved watermark; a missing file is watermark 0 (a
// fresh run), so Load feeds straight into a spec's Start field. A
// zero-length file — what a crash between creating the file and the first
// write leaves behind — is likewise watermark 0, not corruption: no save
// ever completed, so a fresh run is exactly right.
func (c *FileCheckpoint) Load() (int, error) {
	data, err := os.ReadFile(c.Path)
	if errors.Is(err, fs.ErrNotExist) {
		return 0, nil
	}
	if err != nil {
		return 0, err
	}
	body := strings.TrimSpace(string(data))
	if body == "" {
		return 0, nil
	}
	w, err := strconv.Atoi(body)
	if err != nil || w < 0 {
		return 0, fmt.Errorf("bicoop: corrupt checkpoint %s: %q", c.Path, data)
	}
	return w, nil
}

// ChunkError reports the failure of one chunk of a sharded run, after
// retries (if a policy was set) were exhausted or declined. Err is the last
// attempt's failure — errors.Is/As see through to it, so sentinel checks on
// the underlying cause keep working.
type ChunkError struct {
	// Chunk is the chunk index; Start and End are its point range
	// [Start, End) in the run's enumeration order.
	Chunk, Start, End int
	// Attempt is the 1-based attempt count the failure occurred on.
	Attempt int
	// Err is the underlying failure (a *PanicError for contained panics).
	Err error
}

func (e *ChunkError) Error() string {
	return fmt.Sprintf("chunk %d [%d,%d) attempt %d: %v", e.Chunk, e.Start, e.End, e.Attempt, e.Err)
}

func (e *ChunkError) Unwrap() error { return e.Err }

// PanicError is a workload panic contained by the sharded core: the process
// survives, the panic surfaces as an error inside a *ChunkError, and — with
// a RetryPolicy that classifies it transient — the chunk is retried on
// fresh worker state.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string { return fmt.Sprintf("panic: %v", e.Value) }

// translateResilience rewrites the internal chunk/panic error types into
// their public equivalents so callers can errors.As against bicoop types.
// The underlying cause chain is preserved.
func translateResilience(err error) error {
	var cerr *sweep.ChunkError
	if !errors.As(err, &cerr) {
		return err
	}
	inner := cerr.Err
	var perr *sweep.PanicError
	if errors.As(inner, &perr) {
		inner = &PanicError{Value: perr.Value, Stack: perr.Stack}
	}
	return &ChunkError{
		Chunk: cerr.Chunk, Start: cerr.Start, End: cerr.End,
		Attempt: cerr.Attempt, Err: inner,
	}
}

// validateResume rejects a negative Start with the given spec sentinel —
// shared by the three resumable spec types.
func validateResume(start int, sentinel error) error {
	if start < 0 {
		return fmt.Errorf("%w: negative Start %d", sentinel, start)
	}
	return nil
}
