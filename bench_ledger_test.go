package bicoop_test

// bench_ledger_test.go — guards the performance ledger against silent rot.
// scripts/bench.sh selects the ledgered benchmarks with hand-maintained
// regex lists; before this test, renaming a benchmark (or adding a new one)
// could silently drop it from BENCH_*.json and the CI bench gate. Now:
//
//   - every pattern alternative must match a benchmark that still exists
//     (catches renames and typos);
//   - every benchmark function in the ledgered packages must either match a
//     pattern or appear in the explicit exemption list below (catches new
//     benchmarks being forgotten — exempting is a visible diff);
//   - every name in the committed ledgers must correspond to an existing
//     benchmark function (catches stale ledgers).
//
// The disappeared-benchmark direction at run time is covered by `benchjson
// compare`, which fails when a ledger entry goes missing.

import (
	"encoding/json"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// ledgerDirs are the packages scripts/bench.sh benchmarks.
var ledgerDirs = []string{".", "internal/protocols", "internal/sim", "internal/simplex", "internal/sweep", "internal/service", "internal/cache", "internal/gf2"}

// nonLedgerBenchmarks are deliberately excluded from the performance ledger:
// whole-experiment end-to-end runs and substrate micro-benchmarks that
// duplicate a ledgered kernel. Adding a benchmark to the ledgered packages
// requires either adding it to scripts/bench.sh or listing it here.
var nonLedgerBenchmarks = map[string]string{
	"BenchmarkFig4LowSNR":             "experiment end-to-end; region kernel ledgered via BenchmarkFig3",
	"BenchmarkFig4HighSNR":            "experiment end-to-end",
	"BenchmarkClaimHBCOutside":        "experiment end-to-end",
	"BenchmarkClaimHBCStrict":         "covered by BenchmarkSumRateLP",
	"BenchmarkMABCTightness":          "experiment end-to-end",
	"BenchmarkDeltaAblation":          "experiment end-to-end",
	"BenchmarkPathLossAblation":       "experiment end-to-end",
	"BenchmarkBitsimTDBC":             "experiment end-to-end; kernels ledgered as BenchmarkBitTrue*",
	"BenchmarkBitsimMABC":             "experiment end-to-end",
	"BenchmarkDMCBounds":              "experiment end-to-end",
	"BenchmarkBlahutArimoto":          "experiment end-to-end",
	"BenchmarkBaselines":              "experiment end-to-end",
	"BenchmarkBER":                    "experiment end-to-end",
	"BenchmarkAllExperimentsRendered": "full registry render; far too slow for the ledger benchtime",
	"BenchmarkRegionBuild":            "covered by BenchmarkEvaluatorSolve + region tests",
	"BenchmarkBlahutIteration":        "substrate micro-benchmark, off the paper's hot path",
	"BenchmarkGF2Solve":               "covered by the ledgered bit-true block kernels",
	"BenchmarkFadingDraw":             "covered by BenchmarkOutageTrial",
	"BenchmarkBitTrueBlock":           "superseded by BenchmarkBitTrueTDBCBlock",
}

var benchFuncRE = regexp.MustCompile(`(?m)^func (Benchmark[A-Za-z0-9_]+)\(b \*testing\.B\)`)

// sourceBenchmarks scans the ledgered packages for benchmark functions.
func sourceBenchmarks(t *testing.T) map[string]bool {
	t.Helper()
	out := map[string]bool{}
	for _, dir := range ledgerDirs {
		files, err := filepath.Glob(filepath.Join(dir, "*_test.go"))
		if err != nil {
			t.Fatal(err)
		}
		for _, f := range files {
			src, err := os.ReadFile(f)
			if err != nil {
				t.Fatal(err)
			}
			for _, m := range benchFuncRE.FindAllStringSubmatch(string(src), -1) {
				out[m[1]] = true
			}
		}
	}
	if len(out) == 0 {
		t.Fatal("found no benchmark functions — scan broken?")
	}
	return out
}

// benchPatterns extracts the regex alternatives from scripts/bench.sh.
func benchPatterns(t *testing.T) []string {
	t.Helper()
	src, err := os.ReadFile(filepath.Join("scripts", "bench.sh"))
	if err != nil {
		t.Fatal(err)
	}
	re := regexp.MustCompile(`(?m)^(?:bit)?pattern='([^']+)'`)
	ms := re.FindAllStringSubmatch(string(src), -1)
	if len(ms) != 2 {
		t.Fatalf("expected pattern= and bitpattern= in bench.sh, found %d", len(ms))
	}
	var alts []string
	for _, m := range ms {
		alts = append(alts, strings.Split(m[1], "|")...)
	}
	return alts
}

func TestBenchLedgerCoverage(t *testing.T) {
	src := sourceBenchmarks(t)
	alts := benchPatterns(t)

	// Every pattern alternative matches at least one existing benchmark.
	matched := map[string]bool{}
	for _, alt := range alts {
		re, err := regexp.Compile(alt)
		if err != nil {
			t.Fatalf("bench.sh alternative %q does not compile: %v", alt, err)
		}
		hit := false
		for name := range src {
			if re.MatchString(name) {
				matched[name] = true
				hit = true
			}
		}
		if !hit {
			t.Errorf("bench.sh pattern %q matches no existing benchmark (renamed or removed?)", alt)
		}
	}

	// Every source benchmark is either ledgered or visibly exempted.
	for name := range src {
		if !matched[name] && nonLedgerBenchmarks[name] == "" {
			t.Errorf("benchmark %s is neither matched by scripts/bench.sh nor exempted in nonLedgerBenchmarks — add it to the ledger or exempt it explicitly", name)
		}
	}
	// And no stale exemptions for benchmarks that no longer exist or are
	// now ledgered.
	for name := range nonLedgerBenchmarks {
		if !src[name] {
			t.Errorf("nonLedgerBenchmarks exempts %s, which no longer exists", name)
		}
		if matched[name] {
			t.Errorf("nonLedgerBenchmarks exempts %s, but bench.sh now ledgers it — drop the exemption", name)
		}
	}
}

// TestLedgerNamesExist pins every committed ledger entry to a live
// benchmark function.
func TestLedgerNamesExist(t *testing.T) {
	src := sourceBenchmarks(t)
	for _, path := range []string{"BENCH_baseline.json", "BENCH_after.json"} {
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v (the ledger must stay committed)", path, err)
		}
		var ledger struct {
			Benchmarks []struct {
				Name string `json:"name"`
			} `json:"benchmarks"`
		}
		if err := json.Unmarshal(data, &ledger); err != nil {
			t.Fatalf("%s: %v", path, err)
		}
		if len(ledger.Benchmarks) == 0 {
			t.Fatalf("%s: empty ledger", path)
		}
		for _, b := range ledger.Benchmarks {
			name := b.Name
			if i := strings.IndexByte(name, '/'); i > 0 {
				name = name[:i] // sub-benchmark: Name/Case
			}
			if !src[name] {
				t.Errorf("%s lists %s, but no such benchmark function exists", path, b.Name)
			}
		}
	}
}
