package bicoop

// engine.go — the session-oriented core of the public API. An Engine owns
// the pooled evaluator machinery (compiled constraint templates keyed by
// (protocol, bound), reusable simplex workspaces, closed-form fast paths)
// and the simulator worker-pool defaults, and exposes context-aware batch,
// sweep and simulation entry points. The package-level one-shot functions in
// bicoop.go are thin wrappers over a shared default engine; workloads that
// evaluate many scenarios (grids, Monte Carlo posts, services) should hold
// an Engine and use the batch APIs, which amortize evaluator reuse across
// calls instead of paying pool traffic and result allocation per scenario.

import (
	"context"
	"errors"
	"fmt"
	"io"
	"math"
	"sync"

	"bicoop/internal/cache"
	"bicoop/internal/experiments"
	"bicoop/internal/protocols"
	"bicoop/internal/sweep"
)

// Validation errors returned by the facade. They are detected up front so
// malformed inputs fail loudly instead of propagating NaNs into results.
var (
	// ErrInvalidScenario reports a Scenario with NaN or infinite fields.
	ErrInvalidScenario = errors.New("bicoop: invalid scenario")
	// ErrInvalidRates reports a NaN or infinite target rate.
	ErrInvalidRates = errors.New("bicoop: invalid rates")
	// ErrInvalidTrials reports a negative trial count, or a missing one
	// where no default exists (the bit-true simulators).
	ErrInvalidTrials = errors.New("bicoop: invalid trial count")
	// ErrInvalidBlockLength reports a non-positive bit-true block length.
	ErrInvalidBlockLength = errors.New("bicoop: invalid block length")
	// ErrInvalidSimSpec reports a SimSpec selecting zero or several
	// simulators.
	ErrInvalidSimSpec = errors.New("bicoop: invalid simulation spec")
	// ErrInvalidSweepSpec reports an unusable SweepSpec (e.g. nil yield).
	ErrInvalidSweepSpec = errors.New("bicoop: invalid sweep spec")
	// ErrInvalidRegionSpec reports an unusable RegionBatchSpec (nil yield,
	// an empty axis, or a degenerate angle count).
	ErrInvalidRegionSpec = errors.New("bicoop: invalid region spec")
)

// Validate rejects NaN and infinite scenario parameters. All fields are dB
// quantities, so any finite value is representable; non-finite values would
// otherwise surface as NaN rates far downstream.
func (s Scenario) Validate() error {
	fields := [...]struct {
		name string
		v    float64
	}{
		{"PowerDB", s.PowerDB},
		{"GabDB", s.GabDB},
		{"GarDB", s.GarDB},
		{"GbrDB", s.GbrDB},
	}
	for _, f := range fields {
		if math.IsNaN(f.v) || math.IsInf(f.v, 0) {
			return fmt.Errorf("%w: %s = %g", ErrInvalidScenario, f.name, f.v)
		}
	}
	return nil
}

// validateRatePoint rejects NaN and infinite target rates (negative rates
// are semantically meaningful to Feasible — trivially infeasible — and are
// handled downstream).
func validateRatePoint(pt RatePoint) error {
	for _, v := range [...]float64{pt.Ra, pt.Rb} {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			return fmt.Errorf("%w: (%g, %g)", ErrInvalidRates, pt.Ra, pt.Rb)
		}
	}
	return nil
}

// Engine is the concurrency-safe entry point for evaluating the paper's
// bounds at scale. It owns a pool of protocols.Evaluator (each carrying the
// compiled-spec caches keyed by (protocol, bound) plus reusable LP
// workspaces) and the default worker count for the Monte Carlo simulators.
// All methods are safe for concurrent use from many goroutines; the
// zero-cost way to share one across a service is a single package-wide
// instance.
type Engine struct {
	workers int
	cache   *cache.Store
	evals   sync.Pool
}

// Option configures an Engine at construction.
type Option func(*Engine)

// WithWorkers sets the default worker-pool size for every sharded run the
// engine owns: Simulate's Monte Carlo trials, and the SumRateBatch/Sweep
// grid chunks. Non-positive keeps the package default, GOMAXPROCS. A
// SimSpec's or SweepSpec's Workers field overrides it per run. Batch and
// sweep results are bit-identical for every worker count — the setting
// only trades wall-clock time for cores.
func WithWorkers(n int) Option {
	return func(e *Engine) { e.workers = n }
}

// WithCache enables the engine's in-process scenario-keyed result cache,
// bounded at roughly capacity entries (second-chance eviction past that).
// The analytic bounds are pure functions of the scenario, so SumRate,
// SumRateBatch, Sweep and RegionBatch serve repeat points from the cache
// instead of re-solving their LPs. Cached results are bit-identical to
// cache-off results — see doc.go "Result cache" for the grid resolution,
// memory bound and warm-start interaction. Non-positive capacity leaves
// caching off.
func WithCache(capacity int) Option {
	return func(e *Engine) {
		if capacity > 0 {
			e.cache = cache.NewStore(capacity)
		}
	}
}

// WithCacheStore plugs in an externally built result-cache store. The bccd
// daemon uses this to share one store between the engine and the durable
// cache log (service.OpenCacheLog replays the log into the store, then the
// engine fills it). The store type is internal to the module; other
// callers use WithCache.
func WithCacheStore(s *cache.Store) Option {
	return func(e *Engine) { e.cache = s }
}

// CacheStats are the engine's result-cache counters since construction
// (or the durable log's replay, for a bccd engine). Hits and Misses count
// lookups; Fills counts inserted solves; Evictions counts entries
// displaced by the capacity bound. A zero value is returned when caching
// is off.
type CacheStats struct {
	Hits      uint64 `json:"hits"`
	Misses    uint64 `json:"misses"`
	Fills     uint64 `json:"fills"`
	Evictions uint64 `json:"evictions"`
}

// CacheStats returns the engine's result-cache counters.
func (e *Engine) CacheStats() CacheStats {
	if e.cache == nil {
		return CacheStats{}
	}
	st := e.cache.Stats()
	return CacheStats{Hits: st.Hits, Misses: st.Misses, Fills: st.Fills, Evictions: st.Evictions}
}

// NewEngine returns a ready-to-use engine. Engines are cheap: the heavy
// state (constraint templates) is shared process-wide, and evaluators are
// created lazily as concurrency demands.
func NewEngine(opts ...Option) *Engine {
	e := &Engine{}
	e.evals.New = func() any { return protocols.NewEvaluator() }
	for _, o := range opts {
		o(e)
	}
	return e
}

// defaultEngine backs the package-level one-shot convenience functions.
var defaultEngine = NewEngine()

// DefaultEngine returns the shared engine behind the package-level one-shot
// functions, for callers that want to mix the two styles without a second
// evaluator pool.
func DefaultEngine() *Engine { return defaultEngine }

func (e *Engine) getEval() *protocols.Evaluator   { return e.evals.Get().(*protocols.Evaluator) }
func (e *Engine) putEval(ev *protocols.Evaluator) { e.evals.Put(ev) }

// enginePool adapts the engine's evaluator pool to internal/sweep's worker
// pool, so sweeps share evaluators with the rest of the session.
type enginePool struct{ e *Engine }

func (p enginePool) Get() *protocols.Evaluator   { return p.e.getEval() }
func (p enginePool) Put(ev *protocols.Evaluator) { p.e.putEval(ev) }

// sweepOpts resolves the sharding options for a grid run: an explicit
// per-run worker count wins, then the engine's WithWorkers default, then
// GOMAXPROCS (inside internal/sweep).
func (e *Engine) sweepOpts(workers int) sweep.Options {
	if workers <= 0 {
		workers = e.workers
	}
	return sweep.Options{Workers: workers, Pool: enginePool{e}, Cache: e.cache}
}

// ctxDone returns a non-nil error when ctx has ended. It always satisfies
// errors.Is(err, ctx.Err()) — so the documented errors.Is(err,
// context.Canceled) check works — and additionally wraps a distinct
// cancellation cause (context.WithCancelCause) when one was supplied.
func ctxDone(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	err := ctx.Err()
	if err == nil {
		return nil
	}
	if cause := context.Cause(ctx); cause != nil && !errors.Is(cause, err) {
		return fmt.Errorf("%w: %w", err, cause)
	}
	return err
}

// resolve maps public enums and a scenario to their internal forms,
// validating everything up front.
func resolve(p Protocol, b Bound, s Scenario) (protocols.Protocol, protocols.Bound, protocols.Scenario, error) {
	ip, ib, err := resolveEnums(p, b)
	if err != nil {
		return 0, 0, protocols.Scenario{}, err
	}
	if err := s.Validate(); err != nil {
		return 0, 0, protocols.Scenario{}, err
	}
	return ip, ib, s.internal(), nil
}

func resolveEnums(p Protocol, b Bound) (protocols.Protocol, protocols.Bound, error) {
	ip, err := p.internal()
	if err != nil {
		return 0, 0, err
	}
	ib, err := b.internal()
	if err != nil {
		return 0, 0, err
	}
	return ip, ib, nil
}

// SumRate maximizes Ra+Rb over the protocol bound at one scenario, jointly
// optimizing phase durations (the quantity plotted in Fig 3). It draws an
// evaluator from the engine's pool, so repeated calls hit the cached
// constraint templates; for thousands of scenarios prefer SumRateBatch.
func (e *Engine) SumRate(p Protocol, b Bound, s Scenario) (SumRateResult, error) {
	ip, ib, is, err := resolve(p, b, s)
	if err != nil {
		return SumRateResult{}, err
	}
	var key cache.Key
	if e.cache != nil {
		key = cache.SumRateKey(ip, ib, s.PowerDB, s.GabDB, s.GarDB, s.GbrDB)
		if v, ok := e.cache.Lookup(key); ok {
			return SumRateResult{
				Sum:       v.Sum,
				Point:     RatePoint{Ra: v.Ra, Rb: v.Rb},
				Durations: v.Durations(),
			}, nil
		}
	}
	ev := e.getEval()
	defer e.putEval(ev)
	opt, err := ev.WeightedRate(ip, ib, is, 1, 1)
	if err != nil {
		return SumRateResult{}, fmt.Errorf("bicoop: %w", err)
	}
	if e.cache != nil {
		e.cache.Add(key, cache.MakeValue(opt.Objective, opt.Rates.Ra, opt.Rates.Rb, opt.Durations))
	}
	return SumRateResult{
		Sum:       opt.Objective,
		Point:     RatePoint{Ra: opt.Rates.Ra, Rb: opt.Rates.Rb},
		Durations: append([]float64(nil), opt.Durations...),
	}, nil
}

// SumRateBatch evaluates the bound's optimal sum rate for every scenario.
// The grid is sharded by internal/sweep: fixed-size chunks are pulled by a
// worker pool (the engine's WithWorkers default), each worker holding one
// warm pooled evaluator — no per-call spec compilation, and the Naive4/HBC
// LPs warm-start from the previous scenario's basis within a chunk. Chunk
// boundaries are worker-count-independent, so results are bit-identical for
// every Workers setting and are returned in input order. On cancellation it
// returns the contiguous prefix of completed results alongside the context
// error.
func (e *Engine) SumRateBatch(ctx context.Context, p Protocol, b Bound, scenarios []Scenario) ([]SumRateResult, error) {
	ip, ib, err := resolveEnums(p, b)
	if err != nil {
		return nil, err
	}
	for i, s := range scenarios {
		if err := s.Validate(); err != nil {
			return nil, fmt.Errorf("scenario %d: %w", i, err)
		}
	}
	out := make([]SumRateResult, len(scenarios))
	prefix, runErr := sweep.Batch(ctx, ip, ib, len(scenarios), e.sweepOpts(0),
		func(i int) sweep.Scenario { return sweep.Scenario(scenarios[i]) },
		func(i int, r sweep.Result) {
			out[i] = SumRateResult{
				Sum:       r.Sum,
				Point:     RatePoint{Ra: r.Ra, Rb: r.Rb},
				Durations: r.Durations,
			}
		})
	if runErr != nil {
		return out[:prefix], fmt.Errorf("bicoop: %w", runErr)
	}
	return out[:prefix], nil
}

// Feasible reports whether a rate pair is within the protocol bound for
// some phase-duration split (an exact LP test, independent of region
// polygon resolution). Negative rates are trivially infeasible.
func (e *Engine) Feasible(p Protocol, b Bound, s Scenario, pt RatePoint) (bool, error) {
	ip, ib, is, err := resolve(p, b, s)
	if err != nil {
		return false, err
	}
	if err := validateRatePoint(pt); err != nil {
		return false, err
	}
	ev := e.getEval()
	defer e.putEval(ev)
	ok, err := ev.Feasible(ip, ib, is, protocols.RatePair{Ra: pt.Ra, Rb: pt.Rb})
	if err != nil {
		return false, fmt.Errorf("bicoop: %w", err)
	}
	return ok, nil
}

// RunExperiment executes a reproduction experiment and renders its charts,
// tables and findings to w. Quick mode reduces resolutions for fast runs.
// The context bounds the run: cancelling it stops in-flight Monte Carlo
// work within one trial (and analytic sweeps within one chunk).
func (e *Engine) RunExperiment(ctx context.Context, id string, quick bool, seed int64, w io.Writer) error {
	res, err := experiments.Run(ctx, id, experiments.Config{Quick: quick, Seed: seed})
	if err != nil {
		return fmt.Errorf("bicoop: %w", err)
	}
	return renderResult(res, w)
}

// RunExperimentArtifacts executes a reproduction experiment and writes its
// canonical artifact pair — the full text rendering and the numeric CSV of
// every chart and table — to the two writers. This is the same pipeline the
// repository's golden-file tests pin under internal/experiments/testdata.
func (e *Engine) RunExperimentArtifacts(ctx context.Context, id string, quick bool, seed int64, text, csv io.Writer) error {
	res, err := experiments.Run(ctx, id, experiments.Config{Quick: quick, Seed: seed})
	if err != nil {
		return fmt.Errorf("bicoop: %w", err)
	}
	if err := res.WriteArtifact(text, csv); err != nil {
		return fmt.Errorf("bicoop: %w", err)
	}
	return nil
}
