package bicoop

// resume_loop_test.go — chaos-driven resume loops at the facade layer. The
// single-interrupt tests in resilience_test.go pin one crash/resume cycle;
// these drive a seeded schedule of repeated interruptions through a
// FileCheckpoint until the work completes, truncating collected yields to
// the loaded watermark before each resume exactly as a restarting process
// would, and require the stitched output to match an uninterrupted run.
// Interrupt budgets are drawn from a splitmix64 mix of the seed so a
// failing schedule replays exactly.

import (
	"context"
	"errors"
	"path/filepath"
	"testing"
)

var errChaosInterrupt = errors.New("chaos interrupt")

// interruptBudget draws attempt a's yield budget in [1, max]: at least one
// yield per attempt so the watermark always advances and the loop terminates.
func interruptBudget(seed uint64, a, max int) int {
	x := seed ^ uint64(a)*0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return 1 + int(x%uint64(max))
}

// TestRegionBatchResumeLoop interrupts a region batch over and over — a
// fresh run each attempt, resumed via the curve-unit watermark a restarting
// process would read back from disk — and checks the stitched curve sequence
// matches an uninterrupted batch vertex for vertex.
func TestRegionBatchResumeLoop(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	base := RegionBatchSpec{
		Scenarios: []Scenario{
			{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5},
			{PowerDB: 0, GabDB: -7, GarDB: 0, GbrDB: 5},
			{PowerDB: 15, GabDB: -4, GarDB: 2, GbrDB: 3},
		},
		Curves: []RegionCurve{
			{Protocol: MABC, Bound: Inner},
			{Protocol: TDBC, Bound: Inner},
			{Protocol: HBC, Bound: Outer},
		},
		Angles:  41,
		Workers: 2,
	}
	var full []RegionBatchPoint
	if err := eng.RegionBatch(ctx, base, func(pt RegionBatchPoint) error {
		full = append(full, pt)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	nCurves := base.Size()

	ck := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "region.ck")}
	var collected []RegionBatchPoint
	interruptions := 0
	for attempt := 0; attempt < 4*nCurves; attempt++ {
		watermark, err := ck.Load()
		if err != nil {
			t.Fatal(err)
		}
		// A crash discards delivered-but-uncheckpointed curves; the resumed
		// run re-yields them, so drop them from the collection first.
		if watermark < len(collected) {
			collected = collected[:watermark]
		}
		spec := base
		spec.Start = watermark
		spec.Checkpoint = ck
		budget := interruptBudget(0xC0FFEE, attempt, 3)
		yielded := 0
		err = eng.RegionBatch(ctx, spec, func(pt RegionBatchPoint) error {
			if yielded == budget {
				return errChaosInterrupt
			}
			yielded++
			collected = append(collected, pt)
			return nil
		})
		if err == nil {
			if interruptions == 0 {
				t.Fatal("batch completed without a single interruption; shrink the budgets")
			}
			if len(collected) != nCurves {
				t.Fatalf("stitched run yielded %d of %d curves", len(collected), nCurves)
			}
			for i := range collected {
				got, want := collected[i], full[i]
				if got.ScenarioIdx != want.ScenarioIdx || got.CurveIdx != want.CurveIdx {
					t.Fatalf("curve %d coordinates differ after %d interruptions", i, interruptions)
				}
				gv, wv := got.Region.Vertices(), want.Region.Vertices()
				if len(gv) != len(wv) {
					t.Fatalf("curve %d: %d vs %d vertices", i, len(gv), len(wv))
				}
				for j := range gv {
					if gv[j] != wv[j] {
						t.Fatalf("curve %d vertex %d differs after %d interruptions", i, j, interruptions)
					}
				}
			}
			t.Logf("region batch stitched back together across %d interruptions", interruptions)
			return
		}
		if !errors.Is(err, errChaosInterrupt) {
			t.Fatal(err)
		}
		interruptions++
	}
	t.Fatal("region batch never completed; the watermark is not advancing between attempts")
}

// TestCampaignResumeLoop drives the same schedule through a simulation
// campaign: per-spec watermarks, runs below Start skipped on resume, and
// final statistics identical to an uninterrupted campaign (runs are
// seed-deterministic).
func TestCampaignResumeLoop(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	scen := Scenario{PowerDB: 5, GabDB: -7, GarDB: 0, GbrDB: 5}
	campaign := func() CampaignSpec {
		var specs []SimSpec
		for i := 0; i < 8; i++ {
			specs = append(specs, SimSpec{
				Fading: &FadingSpec{Scenario: scen, Protocols: []Protocol{TDBC},
					Target: RatePoint{Ra: 0.4, Rb: 0.4}},
				Trials: 60,
				Seed:   int64(i + 1),
			})
		}
		return CampaignSpec{Specs: specs, Workers: 2}
	}
	full, err := eng.SimulateBatch(ctx, campaign(), nil)
	if err != nil {
		t.Fatal(err)
	}

	ck := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "campaign.ck")}
	nRuns := len(campaign().Specs)
	got := make([]SimResult, nRuns)
	interruptions := 0
	for attempt := 0; attempt < 4*nRuns; attempt++ {
		watermark, err := ck.Load()
		if err != nil {
			t.Fatal(err)
		}
		spec := campaign()
		spec.Start = watermark
		spec.Checkpoint = ck
		budget := interruptBudget(0xBADC0DE, attempt, 2)
		yielded := 0
		_, err = eng.SimulateBatch(ctx, spec, func(i int, r SimResult) error {
			if yielded == budget {
				return errChaosInterrupt
			}
			yielded++
			// Re-yields of delivered-but-uncheckpointed runs overwrite with
			// identical values (seed-determinism), so last-write-wins is safe.
			got[i] = r
			return nil
		})
		if err == nil {
			if interruptions == 0 {
				t.Fatal("campaign completed without a single interruption; shrink the budgets")
			}
			for i := range full {
				g, w := got[i].Fading[TDBC], full[i].Fading[TDBC]
				if g != w {
					t.Fatalf("run %d stats differ after %d interruptions: %+v vs %+v", i, interruptions, g, w)
				}
			}
			t.Logf("campaign stitched back together across %d interruptions", interruptions)
			return
		}
		if !errors.Is(err, errChaosInterrupt) {
			t.Fatal(err)
		}
		interruptions++
	}
	t.Fatal("campaign never completed; the watermark is not advancing between attempts")
}
