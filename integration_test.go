package bicoop_test

// Cross-module integration tests: each test exercises a chain of packages
// end to end and pins two independent computation paths against each other.

import (
	"context"
	"math"
	"math/rand"
	"testing"

	"bicoop"
	"bicoop/internal/dmc"
	"bicoop/internal/prob"
	"bicoop/internal/protocols"
	"bicoop/internal/sim"
	"bicoop/internal/stats"
	"bicoop/internal/xmath"
)

// TestLPDurationsDriveBitTrueSuccess closes the loop LP -> simulator: ask
// the TDBC inner bound for durations supporting a specific rate pair, hand
// exactly those durations to the bit-true simulator, and require reliable
// decoding.
func TestLPDurationsDriveBitTrueSuccess(t *testing.T) {
	net := sim.ErasureNetwork{EpsAR: 0.15, EpsBR: 0.1, EpsAB: 0.55}
	spec, err := protocols.Compile(protocols.TDBC, protocols.BoundInner, net.LinkInfos())
	if err != nil {
		t.Fatal(err)
	}
	target := protocols.RatePair{Ra: 0.3, Rb: 0.2}
	durations, err := spec.DurationsFor(target)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.RunBitTrueTDBC(context.Background(), sim.BitTrueConfig{
		Net:         net,
		Rates:       target,
		Durations:   durations,
		BlockLength: 3000,
		Trials:      25,
		Seed:        9,
		Workers:     4, // pinned so results do not depend on GOMAXPROCS
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessProb < 0.9 {
		t.Errorf("LP-derived durations %v gave success %v at %+v", durations, res.SuccessProb, target)
	}
	// Wilson interval on the outcome must be consistent with near-certain
	// success.
	iv, err := stats.WilsonInterval(int(res.SuccessProb*25+0.5), 25, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if iv.Lo < 0.7 {
		t.Errorf("success CI %+v too loose to certify the operating point", iv)
	}
}

// TestQuantizedDMCProtocolsApproachBinaryInputGaussian pins the DMC
// evaluation path against the Gaussian path: protocol bounds computed from
// finely quantized BPSK-AWGN link channels must approach (from below) the
// bounds computed from binary-input link capacities, and stay below the
// Gaussian-input closed forms.
func TestQuantizedDMCProtocolsApproachBinaryInputGaussian(t *testing.T) {
	// Low SNRs keep the BPSK constraint mild.
	const snrR, snrD = 0.4, 0.1
	qr, err := dmc.QuantizeAWGN(snrR, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	qd, err := dmc.QuantizeAWGN(snrD, 128, 0)
	if err != nil {
		t.Fatal(err)
	}
	n := protocols.DMCNetwork{
		AtoR: qr, BtoR: qr, AtoB: qd, BtoA: qd, RtoA: qr, RtoB: qr,
		MACatR: dmc.Product(qr, qr), NxA: 2, NxB: 2,
	}
	li, err := protocols.LinkInfosFromDMC(n, protocols.Inputs{
		A: prob.NewUniform(2), B: prob.NewUniform(2), R: prob.NewUniform(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	spec, err := protocols.Compile(protocols.TDBC, protocols.BoundInner, li)
	if err != nil {
		t.Fatal(err)
	}
	dmcSum, err := spec.MaxSumRate()
	if err != nil {
		t.Fatal(err)
	}
	// Gaussian comparator: same SNR pattern on a real AWGN channel has
	// per-link capacity 0.5*C(snr).
	gauss := protocols.LinkInfos{
		AtoR: 0.5 * xmath.C(snrR), BtoR: 0.5 * xmath.C(snrR),
		AtoB: 0.5 * xmath.C(snrD), BtoA: 0.5 * xmath.C(snrD),
		RtoA: 0.5 * xmath.C(snrR), RtoB: 0.5 * xmath.C(snrR),
		MACAGivenB: 0.5 * xmath.C(snrR), MACBGivenA: 0.5 * xmath.C(snrR),
		MACSum: 0.5 * xmath.C(2*snrR),
		AtoRB:  0.5 * xmath.C(snrR+snrD), BtoRA: 0.5 * xmath.C(snrR+snrD),
	}
	gaussSpec, err := protocols.Compile(protocols.TDBC, protocols.BoundInner, gauss)
	if err != nil {
		t.Fatal(err)
	}
	gaussSum, err := gaussSpec.MaxSumRate()
	if err != nil {
		t.Fatal(err)
	}
	if dmcSum.Objective > gaussSum.Objective+1e-9 {
		t.Errorf("quantized-BPSK sum %v exceeds Gaussian-input sum %v", dmcSum.Objective, gaussSum.Objective)
	}
	if dmcSum.Objective < 0.85*gaussSum.Objective {
		t.Errorf("quantized-BPSK sum %v too far below Gaussian %v at low SNR", dmcSum.Objective, gaussSum.Objective)
	}
}

// TestEmpiricalMIAgreesWithProtocolTerm ties dmc sampling to the bound
// evaluation: the empirical MI of a BSC relay link must reproduce the AtoR
// term the BSC network evaluator feeds the theorems.
func TestEmpiricalMIAgreesWithProtocolTerm(t *testing.T) {
	const eps = 0.12
	n := protocols.SymmetricBSCNetwork(eps, 0.3)
	li, err := protocols.LinkInfosFromDMC(n, protocols.Inputs{
		A: prob.NewUniform(2), B: prob.NewUniform(2), R: prob.NewUniform(2),
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(31))
	got, bias, err := dmc.EmpiricalMI(dmc.BSC(eps), prob.NewUniform(2), 200000, rng)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-bias-li.AtoR) > 0.01 {
		t.Errorf("empirical MI %v (bias %v) vs protocol term %v", got, bias, li.AtoR)
	}
}

// TestFacadeAgreesWithInternals pins the public API against the internal
// packages on the Fig 4 scenario.
func TestFacadeAgreesWithInternals(t *testing.T) {
	pub := bicoop.Scenario{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}
	intl := protocols.NewScenarioDB(10, -7, 0, 5)
	for _, pp := range bicoop.AllProtocols() {
		pubRes, err := bicoop.OptimalSumRate(pp, bicoop.Inner, pub)
		if err != nil {
			t.Fatal(err)
		}
		var ip protocols.Protocol
		switch pp {
		case bicoop.DT:
			ip = protocols.DT
		case bicoop.Naive4:
			ip = protocols.Naive4
		case bicoop.MABC:
			ip = protocols.MABC
		case bicoop.TDBC:
			ip = protocols.TDBC
		case bicoop.HBC:
			ip = protocols.HBC
		}
		intRes, err := protocols.OptimalSumRate(ip, protocols.BoundInner, intl)
		if err != nil {
			t.Fatal(err)
		}
		if !xmath.ApproxEqual(pubRes.Sum, intRes.Sum, 1e-12) {
			t.Errorf("%v: facade %v vs internal %v", pp, pubRes.Sum, intRes.Sum)
		}
	}
}

// TestOutageSimulatorConvergesToAnalyticInDegenerateFading checks the
// Monte Carlo chain against a known limit: as the fading variance is
// reported per-block but gains are resampled every block, the mean adaptive
// sum rate over many blocks is stable across disjoint seeds (law of large
// numbers), within a few percent.
func TestOutageSimulatorConvergesToAnalyticInDegenerateFading(t *testing.T) {
	cfg := sim.OutageConfig{
		Mean:      protocols.NewScenarioDB(10, -7, 0, 5).G,
		P:         xmath.FromDB(10),
		Protocols: []protocols.Protocol{protocols.MABC},
		Trials:    3000,
		Seed:      1,
	}
	r1, err := sim.RunOutage(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Seed = 2
	r2, err := sim.RunOutage(context.Background(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	m1 := r1.ByProtocol[protocols.MABC].MeanOptSumRate
	m2 := r2.ByProtocol[protocols.MABC].MeanOptSumRate
	if math.Abs(m1-m2)/m1 > 0.05 {
		t.Errorf("disjoint-seed means diverge: %v vs %v", m1, m2)
	}
}
