package bicoop

// resilience_test.go — facade-level pins for the resilience layer: the
// checkpoint/resume round trip on all three streaming APIs (the
// concatenated yields of an interrupted + resumed run must equal an
// uninterrupted run), the error-type translation, and the FileCheckpoint
// primitive. White-box so translateResilience can be exercised against the
// internal error types directly.

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"bicoop/internal/sweep"
)

func TestFileCheckpointRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "ck")
	ck := &FileCheckpoint{Path: path}
	if w, err := ck.Load(); err != nil || w != 0 {
		t.Fatalf("missing file: Load = (%d, %v), want (0, nil)", w, err)
	}
	for _, w := range []int{5, 192, 192, 4096} {
		if err := ck.Save(w); err != nil {
			t.Fatal(err)
		}
		got, err := ck.Load()
		if err != nil || got != w {
			t.Fatalf("Load after Save(%d) = (%d, %v)", w, got, err)
		}
	}
	if _, err := os.Stat(path + ".tmp"); !errors.Is(err, os.ErrNotExist) {
		t.Error("temp file left behind after Save")
	}
	if err := os.WriteFile(path, []byte("not a number"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := ck.Load(); err == nil {
		t.Error("corrupt checkpoint must not load silently")
	}
}

func TestFileCheckpointEmptyFile(t *testing.T) {
	// A crash between creating the checkpoint file and the first completed
	// write leaves a zero-length file. That is "no checkpoint yet", not
	// corruption: resume must start from 0, not fail loud.
	for name, body := range map[string][]byte{"empty": nil, "whitespace": []byte(" \n")} {
		t.Run(name, func(t *testing.T) {
			path := filepath.Join(t.TempDir(), "ck")
			if err := os.WriteFile(path, body, 0o644); err != nil {
				t.Fatal(err)
			}
			ck := &FileCheckpoint{Path: path}
			if w, err := ck.Load(); err != nil || w != 0 {
				t.Fatalf("Load of %s checkpoint = (%d, %v), want (0, nil)", name, w, err)
			}
		})
	}
}

func TestTranslateResilience(t *testing.T) {
	underlying := errors.New("lp blew up")
	internal := &sweep.ChunkError{Chunk: 3, Start: 192, End: 256, Attempt: 2, Err: underlying}
	err := translateResilience(internal)
	var cerr *ChunkError
	if !errors.As(err, &cerr) {
		t.Fatalf("translated error %v is not a public *ChunkError", err)
	}
	if cerr.Chunk != 3 || cerr.Start != 192 || cerr.End != 256 || cerr.Attempt != 2 {
		t.Errorf("coordinates lost in translation: %+v", cerr)
	}
	if !errors.Is(err, underlying) {
		t.Error("underlying cause must survive translation")
	}

	internal.Err = &sweep.PanicError{Value: "boom", Stack: []byte("stack")}
	err = translateResilience(internal)
	var perr *PanicError
	if !errors.As(err, &perr) {
		t.Fatalf("translated panic %v is not a public *PanicError", err)
	}
	if perr.Value != "boom" || string(perr.Stack) != "stack" {
		t.Errorf("panic payload lost: %+v", perr)
	}

	plain := errors.New("unrelated")
	if translateResilience(plain) != plain {
		t.Error("non-chunk errors must pass through untouched")
	}
}

// sweepKey is the comparable projection of a SweepPoint used to diff runs.
type sweepKey struct {
	Index       int
	Sum, Ra, Rb float64
}

func keyOf(pt SweepPoint) sweepKey {
	return sweepKey{pt.Index, pt.Result.Sum, pt.Result.Point.Ra, pt.Result.Point.Rb}
}

// resumeSpec is a 300-point grid (2 powers × 30 placements × 5 protocols),
// wide enough to span several 64-point chunks so an interruption lands
// between checkpoint saves.
func resumeSpec() SweepSpec {
	spec := SweepSpec{PowersDB: []float64{5, 15}}
	for i := 0; i < 30; i++ {
		spec.Placements = append(spec.Placements,
			RelayPlacement{Pos: 0.05 + 0.9*float64(i)/29, Exponent: 3})
	}
	return spec
}

// TestSweepCheckpointResume pins the headline recipe: a sweep interrupted
// mid-run, then resumed from the saved watermark, yields — concatenated —
// exactly what one uninterrupted sweep yields.
func TestSweepCheckpointResume(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	spec := resumeSpec()
	full, err := eng.SweepAll(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	n := spec.Size()
	if len(full) != n {
		t.Fatalf("full run yielded %d of %d points", len(full), n)
	}

	ck := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "sweep.ck")}
	interrupted := errors.New("interrupted")
	var first []SweepPoint
	spec.Checkpoint = ck
	err = eng.Sweep(ctx, spec, func(pt SweepPoint) error {
		if len(first) == 200 {
			return interrupted
		}
		first = append(first, pt)
		return nil
	})
	if err != interrupted {
		t.Fatalf("err = %v, want the yield error verbatim", err)
	}
	watermark, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if watermark <= 0 || watermark > len(first) {
		t.Fatalf("watermark %d after %d yields — a save must never overstate delivery", watermark, len(first))
	}

	spec.Start = watermark
	var resumed []SweepPoint
	if err := eng.Sweep(ctx, spec, func(pt SweepPoint) error {
		resumed = append(resumed, pt)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	combined := append(append([]SweepPoint(nil), first[:watermark]...), resumed...)
	if len(combined) != n {
		t.Fatalf("interrupted+resumed yielded %d points, want %d", len(combined), n)
	}
	for i := range combined {
		if keyOf(combined[i]) != keyOf(full[i]) {
			t.Fatalf("point %d differs after resume: %+v vs %+v", i, keyOf(combined[i]), keyOf(full[i]))
		}
	}
	if final, _ := ck.Load(); final != n {
		t.Errorf("final watermark %d, want %d", final, n)
	}
}

// TestSweepRetryNoFaultsIdentical pins that arming the retry policy on a
// healthy run changes nothing: same points, same bits.
func TestSweepRetryNoFaultsIdentical(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	spec := resumeSpec()
	plain, err := eng.SweepAll(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	spec.Retry = &RetryPolicy{MaxAttempts: 3}
	armed, err := eng.SweepAll(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(armed) != len(plain) {
		t.Fatalf("%d vs %d points", len(armed), len(plain))
	}
	for i := range plain {
		if keyOf(armed[i]) != keyOf(plain[i]) {
			t.Fatalf("point %d differs with retry armed: %+v vs %+v", i, keyOf(armed[i]), keyOf(plain[i]))
		}
	}
}

// TestRegionBatchCheckpointResume pins resume in curve units: interrupt
// after some curves, resume from the saved curve count, and the
// concatenated curves match an uninterrupted batch vertex for vertex.
func TestRegionBatchCheckpointResume(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	spec := RegionBatchSpec{
		Scenarios: []Scenario{
			{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5},
			{PowerDB: 0, GabDB: -7, GarDB: 0, GbrDB: 5},
		},
		Curves: []RegionCurve{
			{Protocol: MABC, Bound: Inner},
			{Protocol: TDBC, Bound: Inner},
			{Protocol: HBC, Bound: Inner},
		},
		Angles: 61,
	}
	var full []RegionBatchPoint
	if err := eng.RegionBatch(ctx, spec, func(pt RegionBatchPoint) error {
		full = append(full, pt)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	nCurves := spec.Size()
	if len(full) != nCurves {
		t.Fatalf("full batch yielded %d of %d curves", len(full), nCurves)
	}

	ck := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "region.ck")}
	interrupted := errors.New("interrupted")
	var first []RegionBatchPoint
	spec.Checkpoint = ck
	err := eng.RegionBatch(ctx, spec, func(pt RegionBatchPoint) error {
		if len(first) == 4 {
			return interrupted
		}
		first = append(first, pt)
		return nil
	})
	if err != interrupted {
		t.Fatalf("err = %v, want the yield error verbatim", err)
	}
	watermark, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if watermark <= 0 || watermark > len(first) {
		t.Fatalf("curve watermark %d after %d yielded curves", watermark, len(first))
	}

	spec.Start = watermark
	var resumed []RegionBatchPoint
	if err := eng.RegionBatch(ctx, spec, func(pt RegionBatchPoint) error {
		resumed = append(resumed, pt)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	combined := append(append([]RegionBatchPoint(nil), first[:watermark]...), resumed...)
	if len(combined) != nCurves {
		t.Fatalf("interrupted+resumed yielded %d curves, want %d", len(combined), nCurves)
	}
	for i := range combined {
		got, want := combined[i], full[i]
		if got.ScenarioIdx != want.ScenarioIdx || got.CurveIdx != want.CurveIdx {
			t.Fatalf("curve %d coordinates differ after resume", i)
		}
		gv, wv := got.Region.Vertices(), want.Region.Vertices()
		if len(gv) != len(wv) {
			t.Fatalf("curve %d: %d vs %d vertices after resume", i, len(gv), len(wv))
		}
		for j := range gv {
			if gv[j] != wv[j] {
				t.Fatalf("curve %d vertex %d differs after resume: %+v vs %+v", i, j, gv[j], wv[j])
			}
		}
	}
}

// TestSimulateBatchCheckpointResume pins campaign resume: completed-run
// watermarks, zero-valued entries below Start in the returned slice, and
// statistics identical to an uninterrupted campaign (runs are
// seed-deterministic).
func TestSimulateBatchCheckpointResume(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	scen := Scenario{PowerDB: 5, GabDB: -7, GarDB: 0, GbrDB: 5}
	campaign := func() CampaignSpec {
		var specs []SimSpec
		for i := 0; i < 6; i++ {
			specs = append(specs, SimSpec{
				Fading: &FadingSpec{Scenario: scen, Protocols: []Protocol{TDBC},
					Target: RatePoint{Ra: 0.4, Rb: 0.4}},
				Trials: 60,
				Seed:   int64(i + 1),
			})
		}
		return CampaignSpec{Specs: specs, Workers: 2}
	}

	full, err := eng.SimulateBatch(ctx, campaign(), nil)
	if err != nil {
		t.Fatal(err)
	}

	ck := &FileCheckpoint{Path: filepath.Join(t.TempDir(), "campaign.ck")}
	interrupted := errors.New("interrupted")
	spec := campaign()
	spec.Checkpoint = ck
	yielded := 0
	_, err = eng.SimulateBatch(ctx, spec, func(i int, r SimResult) error {
		if yielded == 3 {
			return interrupted
		}
		yielded++
		return nil
	})
	if err != interrupted {
		t.Fatalf("err = %v, want the yield error verbatim", err)
	}
	watermark, err := ck.Load()
	if err != nil {
		t.Fatal(err)
	}
	if watermark <= 0 || watermark > yielded {
		t.Fatalf("watermark %d after %d yielded runs", watermark, yielded)
	}

	spec = campaign()
	spec.Start = watermark
	res, err := eng.SimulateBatch(ctx, spec, nil)
	if err != nil {
		t.Fatal(err)
	}
	if len(res) != len(full) {
		t.Fatalf("resumed campaign returned %d of %d results", len(res), len(full))
	}
	for i := 0; i < watermark; i++ {
		if res[i].Fading != nil || res[i].Trials != 0 {
			t.Errorf("entry %d below Start should be zero, got %+v", i, res[i])
		}
	}
	for i := watermark; i < len(full); i++ {
		got, want := res[i].Fading[TDBC], full[i].Fading[TDBC]
		if got != want {
			t.Errorf("run %d stats differ after resume: %+v vs %+v", i, got, want)
		}
	}
}

// TestNegativeStartRejected pins the Start validation on all three specs.
func TestNegativeStartRejected(t *testing.T) {
	eng := NewEngine()
	ctx := context.Background()
	discardSweep := func(SweepPoint) error { return nil }
	if err := eng.Sweep(ctx, SweepSpec{Start: -1}, discardSweep); !errors.Is(err, ErrInvalidSweepSpec) {
		t.Errorf("Sweep: %v, want ErrInvalidSweepSpec", err)
	}
	rspec := RegionBatchSpec{
		Scenarios: []Scenario{{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}},
		Curves:    []RegionCurve{{Protocol: TDBC, Bound: Inner}},
		Start:     -1,
	}
	if err := eng.RegionBatch(ctx, rspec, func(RegionBatchPoint) error { return nil }); !errors.Is(err, ErrInvalidRegionSpec) {
		t.Errorf("RegionBatch: %v, want ErrInvalidRegionSpec", err)
	}
	cspec := CampaignSpec{
		Specs: []SimSpec{{Fading: &FadingSpec{Scenario: Scenario{PowerDB: 5, GabDB: -7, GarDB: 0, GbrDB: 5}}, Trials: 10}},
		Start: -1,
	}
	if _, err := eng.SimulateBatch(ctx, cspec, nil); !errors.Is(err, ErrInvalidSimSpec) {
		t.Errorf("SimulateBatch: %v, want ErrInvalidSimSpec", err)
	}
}
