package bicoop

import (
	"context"
	"errors"
	"fmt"
	"io"

	"bicoop/internal/channel"
	"bicoop/internal/experiments"
	"bicoop/internal/protocols"
	"bicoop/internal/region"
	"bicoop/internal/sim"
	"bicoop/internal/xmath"
)

// Protocol selects one of the paper's transmission protocols.
type Protocol int

// The five protocols, in presentation order.
const (
	// DT is direct transmission (two phases, no relay).
	DT Protocol = iota + 1
	// Naive4 is four-phase relaying without network coding (baseline).
	Naive4
	// MABC is the two-phase multiple-access broadcast protocol.
	MABC
	// TDBC is the three-phase time-division broadcast protocol.
	TDBC
	// HBC is the four-phase hybrid broadcast protocol.
	HBC
)

// AllProtocols lists every protocol in presentation order.
func AllProtocols() []Protocol { return []Protocol{DT, Naive4, MABC, TDBC, HBC} }

// String implements fmt.Stringer.
func (p Protocol) String() string {
	ip, err := p.internal()
	if err != nil {
		return fmt.Sprintf("Protocol(%d)", int(p))
	}
	return ip.String()
}

// Phases returns the number of transmission phases of the protocol.
func (p Protocol) Phases() int {
	ip, err := p.internal()
	if err != nil {
		return 0
	}
	return ip.Phases()
}

func (p Protocol) internal() (protocols.Protocol, error) {
	switch p {
	case DT:
		return protocols.DT, nil
	case Naive4:
		return protocols.Naive4, nil
	case MABC:
		return protocols.MABC, nil
	case TDBC:
		return protocols.TDBC, nil
	case HBC:
		return protocols.HBC, nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownProtocol, int(p))
	}
}

// Bound selects the achievable (inner) or converse (outer) bound.
type Bound int

// The two bound kinds.
const (
	// Inner is the achievable region (Theorems 2, 3, 5).
	Inner Bound = iota + 1
	// Outer is the converse bound (Theorems 2, 4, 6). For DT, Naive4 and
	// MABC it coincides with Inner; for HBC the Gaussian evaluation is the
	// independent-input heuristic the paper leaves open (see DESIGN.md).
	Outer
)

// String implements fmt.Stringer.
func (b Bound) String() string {
	switch b {
	case Inner:
		return "inner"
	case Outer:
		return "outer"
	default:
		return fmt.Sprintf("Bound(%d)", int(b))
	}
}

func (b Bound) internal() (protocols.Bound, error) {
	switch b {
	case Inner:
		return protocols.BoundInner, nil
	case Outer:
		return protocols.BoundOuter, nil
	default:
		return 0, fmt.Errorf("%w: %d", ErrUnknownBound, int(b))
	}
}

// Errors returned by this package.
var (
	ErrUnknownProtocol = errors.New("bicoop: unknown protocol")
	ErrUnknownBound    = errors.New("bicoop: unknown bound")
)

// Scenario is a Gaussian evaluation point in the paper's Section IV model:
// reciprocal link gains (dB), common per-node transmit power (dB over unit
// noise), full CSI.
type Scenario struct {
	// PowerDB is the per-node transmit power in dB (unit noise power).
	PowerDB float64
	// GabDB, GarDB, GbrDB are the effective link power gains in dB.
	GabDB, GarDB, GbrDB float64
}

func (s Scenario) internal() protocols.Scenario {
	return protocols.NewScenarioDB(s.PowerDB, s.GabDB, s.GarDB, s.GbrDB)
}

// RelayPlacement derives a Scenario from geometry: the relay sits at
// position Pos in (0,1) on the segment between the terminals (a at 0, b at
// 1), with path-loss exponent Exponent (defaults to 3 when zero) and the
// direct link normalized to GabDB.
type RelayPlacement struct {
	Pos      float64
	Exponent float64
	GabDB    float64
}

// Scenario converts the placement into a Scenario at the given power.
func (rp RelayPlacement) Scenario(powerDB float64) (Scenario, error) {
	g, err := (channel.LineGeometry{
		RelayPos:  rp.Pos,
		Exponent:  rp.Exponent,
		RefGainAB: xmath.FromDB(rp.GabDB),
	}).Gains()
	if err != nil {
		return Scenario{}, fmt.Errorf("bicoop: %w", err)
	}
	return Scenario{
		PowerDB: powerDB,
		GabDB:   xmath.DB(g.AB),
		GarDB:   xmath.DB(g.AR),
		GbrDB:   xmath.DB(g.BR),
	}, nil
}

// RatePoint is an operating point (Ra, Rb) in bits per channel use.
type RatePoint struct {
	Ra, Rb float64
}

// Sum returns Ra + Rb.
func (r RatePoint) Sum() float64 { return r.Ra + r.Rb }

// SumRateResult reports an LP-optimal sum rate.
type SumRateResult struct {
	// Sum is the optimal Ra+Rb in bits per channel use.
	Sum float64
	// Point is the operating point attaining it.
	Point RatePoint
	// Durations is the optimal phase-duration split (sums to one).
	Durations []float64
}

// OptimalSumRate maximizes Ra+Rb over the protocol bound, jointly optimizing
// phase durations by linear programming (the quantity plotted in Fig 3).
//
// It is a one-shot convenience over DefaultEngine().SumRate; workloads
// evaluating many scenarios should hold an Engine and use SumRateBatch or
// Sweep instead.
func OptimalSumRate(p Protocol, b Bound, s Scenario) (SumRateResult, error) {
	return defaultEngine.SumRate(p, b, s)
}

// Region is a computed rate region (a convex polygon in the non-negative
// rate quadrant).
type Region struct {
	poly region.Polygon
}

// RateRegion computes the full rate region of a protocol bound (one curve
// of Fig 4). It is a one-shot convenience over DefaultEngine().Region with
// default options; prefer the engine for the Angles/Workers knobs.
func RateRegion(ctx context.Context, p Protocol, b Bound, s Scenario) (Region, error) {
	return defaultEngine.Region(ctx, p, b, s, RegionOptions{})
}

// Vertices returns the polygon's vertices in counter-clockwise order.
func (r Region) Vertices() []RatePoint {
	vs := r.poly.Vertices()
	out := make([]RatePoint, len(vs))
	for i, v := range vs {
		out[i] = RatePoint{Ra: v.Ra, Rb: v.Rb}
	}
	return out
}

// Contains reports whether the operating point lies in the region.
func (r Region) Contains(p RatePoint) bool {
	return r.poly.Contains(region.Point{Ra: p.Ra, Rb: p.Rb}, 1e-9)
}

// MaxRa returns the region's maximum one-way rate for terminal a's message.
func (r Region) MaxRa() float64 { v, _ := r.poly.Support(1, 0); return v }

// MaxRb returns the region's maximum one-way rate for terminal b's message.
func (r Region) MaxRb() float64 { v, _ := r.poly.Support(0, 1); return v }

// MaxSumRate returns the maximum Ra+Rb over the region.
func (r Region) MaxSumRate() float64 { return r.poly.MaxSumRate() }

// Area returns the region's area (a scalar summary used for comparisons).
func (r Region) Area() float64 { return r.poly.Area() }

// MaxRbAt returns the largest Rb with (ra, Rb) in the region, and whether ra
// is within the region's range.
func (r Region) MaxRbAt(ra float64) (float64, bool) { return r.poly.RbAt(ra) }

// Feasible reports whether a rate pair is within the protocol bound for
// some phase-duration split (an exact LP test, independent of region
// polygon resolution). It is a one-shot convenience over
// DefaultEngine().Feasible.
func Feasible(p Protocol, b Bound, s Scenario, pt RatePoint) (bool, error) {
	return defaultEngine.Feasible(p, b, s, pt)
}

// HBCBeyondOuterBounds returns achievable HBC operating points that are
// provably outside BOTH the MABC and TDBC outer bounds at the scenario —
// the paper's "surprising" Section IV finding. An empty slice means no such
// points at this scenario.
func HBCBeyondOuterBounds(s Scenario) ([]RatePoint, error) {
	if err := s.Validate(); err != nil {
		return nil, err
	}
	esc, err := protocols.HBCEscapePoints(s.internal(), protocols.RegionOptions{})
	if err != nil {
		return nil, fmt.Errorf("bicoop: %w", err)
	}
	out := make([]RatePoint, 0, len(esc))
	for _, e := range esc {
		out = append(out, RatePoint{Ra: e.Point.Ra, Rb: e.Point.Rb})
	}
	return out, nil
}

// FadingConfig parameterizes a Rayleigh block-fading Monte Carlo run.
type FadingConfig struct {
	// Scenario gives the mean gains and power.
	Scenario Scenario
	// Protocols to simulate; empty defaults to MABC, TDBC, HBC.
	Protocols []Protocol
	// Target is the fixed rate pair for outage probability (zero disables).
	Target RatePoint
	// Trials is the number of fading blocks (default 2000); negative is
	// ErrInvalidTrials.
	Trials int
	// Seed drives the simulation deterministically.
	Seed int64
}

// FadingStats summarizes one protocol's fading performance.
type FadingStats struct {
	// MeanOptSumRate is the fading-averaged CSI-adaptive optimal sum rate.
	MeanOptSumRate float64
	// OutageProb is the fraction of blocks where Target was infeasible.
	OutageProb float64
}

// SimulateFading runs the quasi-static Rayleigh fading Monte Carlo. It is a
// one-shot convenience over DefaultEngine().Simulate with a FadingSpec;
// prefer the engine for worker control and progress.
func SimulateFading(ctx context.Context, cfg FadingConfig) (map[Protocol]FadingStats, error) {
	res, err := defaultEngine.Simulate(ctx, SimSpec{
		Fading: &FadingSpec{
			Scenario:  cfg.Scenario,
			Protocols: cfg.Protocols,
			Target:    cfg.Target,
		},
		Trials: cfg.Trials,
		Seed:   cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	return res.Fading, nil
}

// ErasureLinks specifies a three-link erasure network for the bit-true
// simulator: each link delivers a bit with probability 1-eps.
type ErasureLinks struct {
	EpsAR, EpsBR, EpsAB float64
}

// BitTrueResult reports a bit-true TDBC simulation outcome.
type BitTrueResult struct {
	// SuccessProb is the fraction of blocks with both messages exchanged.
	SuccessProb float64
	// RelayFailures and TerminalFailures split the losses by stage.
	RelayFailures, TerminalFailures int
}

// OptimalTDBCErasureRates returns the sum-rate-optimal TDBC operating point
// and durations for an erasure network (Theorem 3 with every mutual
// information term equal to one minus the link's erasure probability). Use
// it to place bit-true simulation sweeps relative to the exact boundary.
func OptimalTDBCErasureRates(links ErasureLinks) (SumRateResult, error) {
	net := sim.ErasureNetwork{EpsAR: links.EpsAR, EpsBR: links.EpsBR, EpsAB: links.EpsAB}
	if err := net.Validate(); err != nil {
		return SumRateResult{}, fmt.Errorf("bicoop: %w", err)
	}
	spec, err := protocols.Compile(protocols.TDBC, protocols.BoundInner, net.LinkInfos())
	if err != nil {
		return SumRateResult{}, fmt.Errorf("bicoop: %w", err)
	}
	opt, err := spec.MaxSumRate()
	if err != nil {
		return SumRateResult{}, fmt.Errorf("bicoop: %w", err)
	}
	return SumRateResult{
		Sum:       opt.Objective,
		Point:     RatePoint{Ra: opt.Rates.Ra, Rb: opt.Rates.Rb},
		Durations: opt.Durations,
	}, nil
}

// BitTrueTDBCConfig parameterizes a bit-true TDBC run.
type BitTrueTDBCConfig struct {
	// Links is the erasure network.
	Links ErasureLinks
	// Rates is the target message rate pair in bits per channel use.
	Rates RatePoint
	// Durations optionally pins the three phase durations (summing to 1).
	// Nil derives them from the Theorem 3 inner bound; rates outside the
	// bound then return an error. Pin the durations (e.g. from
	// OptimalTDBCErasureRates) to simulate operating points beyond the
	// bound and watch decoding actually fail.
	Durations []float64
	// BlockLength is the number of channel uses per block.
	BlockLength int
	// Trials is the number of independent blocks.
	Trials int
	// Seed drives the simulation deterministically (for a fixed Workers).
	Seed int64
	// Workers bounds the goroutines sharding the trials; non-positive means
	// GOMAXPROCS. Results are deterministic per (Seed, Trials, Workers);
	// changing Workers reshards the per-trial random streams.
	Workers int
}

// SimulateBitTrueTDBC runs the TDBC protocol bit by bit over erasure links:
// random linear codes, overheard side information, XOR network coding at the
// relay, Gaussian-elimination decoding. Trials are sharded across Workers
// goroutines. It is a one-shot convenience over DefaultEngine().Simulate
// with a BitTrueTDBCSpec; prefer the engine for progress reporting.
func SimulateBitTrueTDBC(ctx context.Context, cfg BitTrueTDBCConfig) (BitTrueResult, error) {
	res, err := defaultEngine.Simulate(ctx, SimSpec{
		BitTrueTDBC: &BitTrueTDBCSpec{
			Links:       cfg.Links,
			Rates:       cfg.Rates,
			Durations:   cfg.Durations,
			BlockLength: cfg.BlockLength,
		},
		Trials:  cfg.Trials,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
	})
	if err != nil {
		return BitTrueResult{}, err
	}
	return *res.BitTrue, nil
}

// AmplifyForwardSumRate evaluates the two-phase amplify-and-forward scheme
// (references [7],[8] of the paper): the relay scales and retransmits its
// noisy observation instead of decoding; terminals cancel their own signal.
// A baseline against which the paper's decode-and-forward protocols are
// positioned.
func AmplifyForwardSumRate(s Scenario) (SumRateResult, error) {
	if err := s.Validate(); err != nil {
		return SumRateResult{}, err
	}
	res, err := protocols.AFSumRate(s.internal())
	if err != nil {
		return SumRateResult{}, fmt.Errorf("bicoop: %w", err)
	}
	return SumRateResult{
		Sum:       res.Sum,
		Point:     RatePoint{Ra: res.Rates.Ra, Rb: res.Rates.Rb},
		Durations: res.Durations,
	}, nil
}

// FullDuplexSumRate evaluates the full-duplex two-way decode-and-forward
// bound (reference [9]) — the ceiling the paper's half-duplex protocols
// chase.
func FullDuplexSumRate(s Scenario) (SumRateResult, error) {
	if err := s.Validate(); err != nil {
		return SumRateResult{}, err
	}
	res, err := protocols.FullDuplexSumRate(s.internal())
	if err != nil {
		return SumRateResult{}, fmt.Errorf("bicoop: %w", err)
	}
	return SumRateResult{
		Sum:   res.Sum,
		Point: RatePoint{Ra: res.Rates.Ra, Rb: res.Rates.Rb},
	}, nil
}

// HalfDuplexPenalty returns the fraction of the full-duplex DF sum rate a
// half-duplex protocol retains at the scenario (1 means no penalty).
func HalfDuplexPenalty(p Protocol, s Scenario) (float64, error) {
	ip, err := p.internal()
	if err != nil {
		return 0, err
	}
	if err := s.Validate(); err != nil {
		return 0, err
	}
	pen, err := protocols.HalfDuplexPenalty(ip, s.internal())
	if err != nil {
		return 0, fmt.Errorf("bicoop: %w", err)
	}
	return pen, nil
}

// MABCComputeForwardLinks parameterizes the compute-and-forward MABC
// simulator: erasure probabilities of the MAC phase at the relay and of the
// two broadcast links.
type MABCComputeForwardLinks struct {
	EpsMAC, EpsRA, EpsRB float64
}

// ComputeForwardBound returns the symmetric per-terminal rate bound of the
// compute-and-forward MABC scheme and the duration split achieving it (the
// Theorem 2 remark's protocol, where the relay decodes only the XOR).
func (l MABCComputeForwardLinks) ComputeForwardBound() (rate float64, durations []float64) {
	return sim.MABCComputeForwardBound(l.EpsMAC, l.EpsRA, l.EpsRB)
}

// BitTrueMABCConfig parameterizes a compute-and-forward MABC run.
type BitTrueMABCConfig struct {
	// Links is the MAC/broadcast erasure network.
	Links MABCComputeForwardLinks
	// Rate is the common per-terminal message rate in bits per channel use.
	Rate float64
	// BlockLength is the number of channel uses per block.
	BlockLength int
	// Trials is the number of independent blocks.
	Trials int
	// Seed drives the simulation deterministically (for a fixed Workers).
	Seed int64
	// Workers bounds the goroutines sharding the trials; non-positive means
	// GOMAXPROCS. Results are deterministic per (Seed, Trials, Workers).
	Workers int
}

// SimulateBitTrueMABC runs the compute-and-forward MABC protocol bit by
// bit: both terminals transmit parities of their messages over a shared
// linear code simultaneously, the relay decodes only the XOR
// (physical-layer network coding) and rebroadcasts it. Trials are sharded
// across cfg.Workers goroutines. It is a one-shot convenience over
// DefaultEngine().Simulate with a BitTrueMABCSpec.
func SimulateBitTrueMABC(ctx context.Context, cfg BitTrueMABCConfig) (BitTrueResult, error) {
	res, err := defaultEngine.Simulate(ctx, SimSpec{
		BitTrueMABC: &BitTrueMABCSpec{
			Links:       cfg.Links,
			Rate:        cfg.Rate,
			BlockLength: cfg.BlockLength,
		},
		Trials:  cfg.Trials,
		Seed:    cfg.Seed,
		Workers: cfg.Workers,
	})
	if err != nil {
		return BitTrueResult{}, err
	}
	return *res.BitTrue, nil
}

// Experiments returns the ids of every registered reproduction experiment
// (figures, claim checks, ablations; see DESIGN.md).
func Experiments() []string { return experiments.IDs() }

// DescribeExperiment returns an experiment's one-line description.
func DescribeExperiment(id string) (string, error) {
	d, err := experiments.Describe(id)
	if err != nil {
		return "", fmt.Errorf("bicoop: %w", err)
	}
	return d, nil
}

// RunExperiment executes a reproduction experiment and renders its charts,
// tables and findings to w. Quick mode reduces resolutions for fast runs.
// It is a convenience over DefaultEngine().RunExperiment.
func RunExperiment(ctx context.Context, id string, quick bool, seed int64, w io.Writer) error {
	return defaultEngine.RunExperiment(ctx, id, quick, seed, w)
}

func renderResult(res experiments.Result, w io.Writer) error {
	return res.Render(w)
}
