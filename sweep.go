package bicoop

// sweep.go — the public face of the grid subsystem. The paper's headline
// artifacts (Fig 3 placement sweeps, power crossovers, erasure waterfall
// placement) are all grids of scenarios; SweepSpec declares the axes once
// and Engine.Sweep streams the evaluated points through a callback in
// enumeration order. Evaluation itself is sharded by internal/sweep: the
// grid is split into fixed-size chunks pulled by a worker pool, each worker
// holds a warm evaluator whose Naive4/HBC LPs warm-start from the previous
// point within a chunk, and chunk boundaries are worker-count-independent,
// so results are bit-identical for every Workers setting.

import (
	"context"
	"errors"
	"fmt"
	"math"

	"bicoop/internal/protocols"
	"bicoop/internal/sweep"
)

// SweepSpec declares a grid of evaluation points. The Gaussian grid is the
// cross product PowersDB × Placements × Protocols; Erasures is an
// independent axis of erasure networks evaluated on the TDBC inner bound
// (the bound the bit-true simulator executes). Zero-value fields default:
// Protocols to AllProtocols(), Bound to Inner, PowersDB to {Base.PowerDB},
// and an empty Placements axis evaluates the Base gains directly. A spec
// that sets Erasures and no Gaussian axis (no PowersDB, no Placements) is
// an erasures-only sweep — the Base scenario is not evaluated; set
// PowersDB explicitly to combine both.
type SweepSpec struct {
	// Protocols to evaluate at every Gaussian grid point.
	Protocols []Protocol
	// Bound selects inner or outer; zero means Inner.
	Bound Bound
	// Base supplies the link gains when Placements is empty and the power
	// when PowersDB is empty.
	Base Scenario
	// PowersDB is the transmit-power axis (dB).
	PowersDB []float64
	// Placements is the relay-geometry axis; each entry derives gains from
	// a relay position and path-loss exponent.
	Placements []RelayPlacement
	// Erasures is the erasure-network axis: each entry contributes one
	// TDBC inner-bound point (Theorem 3 with every mutual-information term
	// equal to one minus the link's erasure probability).
	Erasures []ErasureLinks
	// Workers bounds the goroutines sharding the grid; zero uses the
	// engine's WithWorkers default, which itself defaults to GOMAXPROCS.
	// Results are bit-identical for every value — Workers only trades
	// wall-clock time for cores.
	Workers int
	// Start resumes the sweep past the first Start points: an earlier run
	// already yielded them, so they are neither re-evaluated (beyond at
	// most one chunk of warm-up) nor yielded again. Feed a Checkpointer's
	// last saved watermark back here; the concatenated yields of the two
	// runs match an uninterrupted sweep exactly.
	Start int
	// Checkpoint, when non-nil, observes the yielded-point watermark as it
	// advances (see Checkpointer). A Save error stops the sweep.
	Checkpoint Checkpointer
	// Retry, when non-nil, re-runs transiently failed chunks on fresh
	// evaluator state instead of failing the sweep (see RetryPolicy).
	Retry *RetryPolicy
}

// Size returns the number of points the sweep will yield.
func (spec SweepSpec) Size() int {
	ispec, err := spec.internal()
	if err != nil {
		return 0
	}
	return ispec.Size()
}

// internal converts the spec to the internal grid form, resolving enums.
func (spec SweepSpec) internal() (sweep.Spec, error) {
	out := sweep.Spec{
		Base:     sweep.Scenario(spec.Base),
		PowersDB: spec.PowersDB,
	}
	for _, p := range spec.Protocols {
		ip, err := p.internal()
		if err != nil {
			return sweep.Spec{}, err
		}
		out.Protocols = append(out.Protocols, ip)
	}
	if spec.Bound != 0 {
		ib, err := spec.Bound.internal()
		if err != nil {
			return sweep.Spec{}, err
		}
		out.Bound = ib
	}
	for _, rp := range spec.Placements {
		out.Placements = append(out.Placements, sweep.Placement{
			Pos: rp.Pos, Exponent: rp.Exponent, GabDB: rp.GabDB,
		})
	}
	for _, e := range spec.Erasures {
		out.Erasures = append(out.Erasures, sweep.Erasure(e))
	}
	return out, nil
}

// Validate checks the spec without running it: axis values, protocol and
// bound enums, and the resume offset. Engine.Sweep runs the same checks up
// front; callers that accept specs over a wire (the bccd job service) call
// it at admission time so a malformed job is rejected with a typed sentinel
// before any work is queued.
func (spec SweepSpec) Validate() error {
	if err := spec.validate(); err != nil {
		return err
	}
	if err := validateResume(spec.Start, ErrInvalidSweepSpec); err != nil {
		return err
	}
	_, err := spec.internal()
	return err
}

// validate rejects non-finite spec numbers up front with the facade's typed
// sentinels: every power-axis value, and the Base scenario where the grid
// will actually evaluate it (placements supply their own gains, and an
// erasures-only sweep never touches Base).
func (spec SweepSpec) validate() error {
	for i, pdb := range spec.PowersDB {
		if math.IsNaN(pdb) || math.IsInf(pdb, 0) {
			return fmt.Errorf("%w: PowersDB[%d] = %g", ErrInvalidScenario, i, pdb)
		}
	}
	gaussian := len(spec.PowersDB) > 0 || len(spec.Placements) > 0 || len(spec.Erasures) == 0
	if gaussian && len(spec.Placements) == 0 {
		if err := spec.Base.Validate(); err != nil {
			return err
		}
	}
	return nil
}

// SweepPoint is one evaluated grid point, carrying its grid coordinates and
// the resolved scenario alongside the result.
type SweepPoint struct {
	// Index is the point's position in the sweep's enumeration order.
	Index int
	// PowerDB is the transmit power of a Gaussian point.
	PowerDB float64
	// Placement is the relay geometry that produced Scenario, nil for
	// base-gains and erasure points.
	Placement *RelayPlacement
	// Erasure is non-nil for erasure-axis points.
	Erasure *ErasureLinks
	// Scenario is the resolved Gaussian scenario (zero for erasure points).
	Scenario Scenario
	// Protocol and Bound identify the evaluated bound. Erasure points are
	// always TDBC Inner.
	Protocol Protocol
	Bound    Bound
	// Result is the LP-optimal sum rate at the point.
	Result SumRateResult
}

// publicProtocol maps an internal protocol enum back to the facade's.
func publicProtocol(ip protocols.Protocol) Protocol {
	switch ip {
	case protocols.DT:
		return DT
	case protocols.Naive4:
		return Naive4
	case protocols.MABC:
		return MABC
	case protocols.TDBC:
		return TDBC
	case protocols.HBC:
		return HBC
	default:
		return 0
	}
}

// publicBound maps an internal bound enum back to the facade's.
func publicBound(ib protocols.Bound) Bound {
	if ib == protocols.BoundOuter {
		return Outer
	}
	return Inner
}

// Sweep evaluates the grid and streams each point to yield in enumeration
// order: for each power, for each placement (or the base gains), for each
// protocol — then each erasure network. A non-nil error from yield stops
// the sweep and is returned. Cancelling ctx stops the workers within one
// chunk of points.
//
// Evaluation is sharded across spec.Workers goroutines (default: the
// engine's WithWorkers setting, then GOMAXPROCS), each holding one warm
// pooled evaluator across its chunks, so no per-point spec compilation or
// workspace allocation occurs — and the results are bit-identical for
// every worker count.
func (e *Engine) Sweep(ctx context.Context, spec SweepSpec, yield func(SweepPoint) error) error {
	if yield == nil {
		return fmt.Errorf("%w: nil yield callback", ErrInvalidSweepSpec)
	}
	if err := spec.Validate(); err != nil {
		return err
	}
	ispec, err := spec.internal()
	if err != nil {
		return err
	}
	opts := e.sweepOpts(spec.Workers)
	opts.Start = spec.Start
	opts.Checkpoint = spec.Checkpoint
	opts.Retry = spec.Retry.internal()
	var yieldErr error
	err = sweep.Sweep(ctx, ispec, opts, func(pt sweep.Point) error {
		pub := SweepPoint{
			Index:    pt.Index,
			PowerDB:  pt.PowerDB,
			Scenario: Scenario(pt.Scenario),
			Protocol: publicProtocol(pt.Proto),
			Bound:    publicBound(pt.Bound),
			Result: SumRateResult{
				Sum:       pt.Sum,
				Point:     RatePoint{Ra: pt.Ra, Rb: pt.Rb},
				Durations: pt.Durations,
			},
		}
		if pt.PlacementIdx >= 0 {
			rp := spec.Placements[pt.PlacementIdx]
			pub.Placement = &rp
		}
		if pt.ErasureIdx >= 0 {
			links := spec.Erasures[pt.ErasureIdx]
			pub.Erasure = &links
		}
		if err := yield(pub); err != nil {
			yieldErr = err
			return err
		}
		return nil
	})
	switch {
	case err == nil:
		return nil
	case yieldErr != nil && errors.Is(err, yieldErr):
		return yieldErr // the caller's own error, returned verbatim
	case errors.Is(err, sweep.ErrSpec):
		return fmt.Errorf("%w: %w", ErrInvalidSweepSpec, err)
	case errors.Is(err, protocols.ErrBadScenario):
		// A grid point resolved to an unusable scenario (e.g. a placement
		// whose geometry produced non-finite gains): surface the facade's
		// typed sentinel, like the pre-sharding sweep did.
		return fmt.Errorf("%w: %w", ErrInvalidScenario, err)
	default:
		return fmt.Errorf("bicoop: %w", translateResilience(err))
	}
}

// SweepAll runs Sweep and collects every point — convenient when the grid
// is small enough to hold in memory.
func (e *Engine) SweepAll(ctx context.Context, spec SweepSpec) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, spec.Size())
	err := e.Sweep(ctx, spec, func(pt SweepPoint) error {
		out = append(out, pt)
		return nil
	})
	return out, err
}
