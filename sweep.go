package bicoop

// sweep.go — the grid subsystem. The paper's headline artifacts (Fig 3
// placement sweeps, power crossovers, erasure waterfall placement) are all
// grids of scenarios; SweepSpec declares the axes once and Engine.Sweep
// streams the evaluated points through a callback so callers can render or
// aggregate incrementally, holding one evaluator across the entire grid.

import (
	"context"
	"fmt"

	"bicoop/internal/protocols"
	"bicoop/internal/sim"
)

// SweepSpec declares a grid of evaluation points. The Gaussian grid is the
// cross product PowersDB × Placements × Protocols; Erasures is an
// independent axis of erasure networks evaluated on the TDBC inner bound
// (the bound the bit-true simulator executes). Zero-value fields default:
// Protocols to AllProtocols(), Bound to Inner, PowersDB to {Base.PowerDB},
// and an empty Placements axis evaluates the Base gains directly. A spec
// that sets Erasures and no Gaussian axis (no PowersDB, no Placements) is
// an erasures-only sweep — the Base scenario is not evaluated; set
// PowersDB explicitly to combine both.
type SweepSpec struct {
	// Protocols to evaluate at every Gaussian grid point.
	Protocols []Protocol
	// Bound selects inner or outer; zero means Inner.
	Bound Bound
	// Base supplies the link gains when Placements is empty and the power
	// when PowersDB is empty.
	Base Scenario
	// PowersDB is the transmit-power axis (dB).
	PowersDB []float64
	// Placements is the relay-geometry axis; each entry derives gains from
	// a relay position and path-loss exponent.
	Placements []RelayPlacement
	// Erasures is the erasure-network axis: each entry contributes one
	// TDBC inner-bound point (Theorem 3 with every mutual-information term
	// equal to one minus the link's erasure probability).
	Erasures []ErasureLinks
}

// gaussian reports whether the spec evaluates any Gaussian grid points.
func (spec SweepSpec) gaussian() bool {
	return len(spec.PowersDB) > 0 || len(spec.Placements) > 0 || len(spec.Erasures) == 0
}

// Size returns the number of points the sweep will yield.
func (spec SweepSpec) Size() int {
	n := len(spec.Erasures)
	if !spec.gaussian() {
		return n
	}
	protos := len(spec.Protocols)
	if protos == 0 {
		protos = len(AllProtocols())
	}
	powers := len(spec.PowersDB)
	if powers == 0 {
		powers = 1
	}
	places := len(spec.Placements)
	if places == 0 {
		places = 1
	}
	return powers*places*protos + n
}

// SweepPoint is one evaluated grid point, carrying its grid coordinates and
// the resolved scenario alongside the result.
type SweepPoint struct {
	// Index is the point's position in the sweep's enumeration order.
	Index int
	// PowerDB is the transmit power of a Gaussian point.
	PowerDB float64
	// Placement is the relay geometry that produced Scenario, nil for
	// base-gains and erasure points.
	Placement *RelayPlacement
	// Erasure is non-nil for erasure-axis points.
	Erasure *ErasureLinks
	// Scenario is the resolved Gaussian scenario (zero for erasure points).
	Scenario Scenario
	// Protocol and Bound identify the evaluated bound. Erasure points are
	// always TDBC Inner.
	Protocol Protocol
	Bound    Bound
	// Result is the LP-optimal sum rate at the point.
	Result SumRateResult
}

// Sweep evaluates the grid and streams each point to yield in enumeration
// order: for each power, for each placement (or the base gains), for each
// protocol — then each erasure network. A non-nil error from yield stops
// the sweep and is returned. Cancelling ctx stops within one point. One
// pooled evaluator is held across the whole grid, so no per-point spec
// compilation or workspace allocation occurs.
func (e *Engine) Sweep(ctx context.Context, spec SweepSpec, yield func(SweepPoint) error) error {
	if yield == nil {
		return fmt.Errorf("%w: nil yield callback", ErrInvalidSweepSpec)
	}
	protos := spec.Protocols
	if len(protos) == 0 {
		protos = AllProtocols()
	}
	bound := spec.Bound
	if bound == 0 {
		bound = Inner
	}
	ib, err := bound.internal()
	if err != nil {
		return err
	}
	iprotos := make([]protocols.Protocol, len(protos))
	for i, p := range protos {
		if iprotos[i], err = p.internal(); err != nil {
			return err
		}
	}
	powers := spec.PowersDB
	if len(powers) == 0 {
		powers = []float64{spec.Base.PowerDB}
	}
	if !spec.gaussian() {
		powers = nil
	}

	ev := e.getEval()
	defer e.putEval(ev)
	idx := 0
	emit := func(pt SweepPoint, ip protocols.Protocol, ib protocols.Bound, li protocols.LinkInfos) error {
		if err := ctxDone(ctx); err != nil {
			return fmt.Errorf("bicoop: %w", err)
		}
		opt, err := ev.WeightedRateLinks(ip, ib, li, 1, 1)
		if err != nil {
			return fmt.Errorf("bicoop: sweep point %d: %w", idx, err)
		}
		pt.Index = idx
		pt.Result = SumRateResult{
			Sum:       opt.Objective,
			Point:     RatePoint{Ra: opt.Rates.Ra, Rb: opt.Rates.Rb},
			Durations: append([]float64(nil), opt.Durations...),
		}
		idx++
		return yield(pt)
	}

	for _, pdb := range powers {
		scenarios, placements, err := spec.resolveRow(pdb)
		if err != nil {
			return err
		}
		for si, s := range scenarios {
			li, err := protocols.LinkInfosFromScenario(s.internal())
			if err != nil {
				return fmt.Errorf("bicoop: %w", err)
			}
			for pi, proto := range protos {
				pt := SweepPoint{
					PowerDB:   pdb,
					Placement: placements[si],
					Scenario:  s,
					Protocol:  proto,
					Bound:     bound,
				}
				if err := emit(pt, iprotos[pi], ib, li); err != nil {
					return err
				}
			}
		}
	}
	for i := range spec.Erasures {
		links := spec.Erasures[i]
		net := sim.ErasureNetwork{EpsAR: links.EpsAR, EpsBR: links.EpsBR, EpsAB: links.EpsAB}
		if err := net.Validate(); err != nil {
			return fmt.Errorf("bicoop: %w", err)
		}
		pt := SweepPoint{
			Erasure:  &links,
			Protocol: TDBC,
			Bound:    Inner,
		}
		if err := emit(pt, protocols.TDBC, protocols.BoundInner, net.LinkInfos()); err != nil {
			return err
		}
	}
	return nil
}

// resolveRow materializes one power row of the Gaussian grid: the scenarios
// to evaluate and, aligned with them, the placement that produced each (nil
// for the base-gains point).
func (spec SweepSpec) resolveRow(pdb float64) ([]Scenario, []*RelayPlacement, error) {
	if len(spec.Placements) == 0 {
		s := spec.Base
		s.PowerDB = pdb
		if err := s.Validate(); err != nil {
			return nil, nil, err
		}
		return []Scenario{s}, []*RelayPlacement{nil}, nil
	}
	scenarios := make([]Scenario, 0, len(spec.Placements))
	placements := make([]*RelayPlacement, 0, len(spec.Placements))
	for i := range spec.Placements {
		rp := spec.Placements[i]
		s, err := rp.Scenario(pdb)
		if err != nil {
			return nil, nil, fmt.Errorf("%w: placement %d: %v", ErrInvalidSweepSpec, i, err)
		}
		if err := s.Validate(); err != nil {
			return nil, nil, err
		}
		scenarios = append(scenarios, s)
		placements = append(placements, &rp)
	}
	return scenarios, placements, nil
}

// SweepAll runs Sweep and collects every point — convenient when the grid
// is small enough to hold in memory.
func (e *Engine) SweepAll(ctx context.Context, spec SweepSpec) ([]SweepPoint, error) {
	out := make([]SweepPoint, 0, spec.Size())
	err := e.Sweep(ctx, spec, func(pt SweepPoint) error {
		out = append(out, pt)
		return nil
	})
	return out, err
}
