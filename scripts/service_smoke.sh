#!/bin/sh
# service_smoke.sh — quick end-to-end bccd lifecycle: build, start, submit a
# small sweep job, wait for it, fetch the CSV, and SIGTERM-drain. Fails if
# any step does; prints the first rows of the results on success.
set -eu

work="$(mktemp -d)"
cd "$(dirname "$0")/.."
go build -o "$work/bccd" ./cmd/bccd

"$work/bccd" -store "$work/jobs" -addr 127.0.0.1:0 -addrfile "$work/addr" &
pid=$!
trap 'kill "$pid" 2> /dev/null || true' EXIT INT TERM
for _ in $(seq 1 500); do
    [ -s "$work/addr" ] && break
    sleep 0.01
done
addr="$(cat "$work/addr")"

job='{"sweep": {"base": {"PowerDB": 0, "GabDB": -7, "GarDB": 0, "GbrDB": 5}, "powers_db": [0, 5, 10, 15, 20], "placements": [{"Pos": 0.5, "Exponent": 3, "GabDB": -7}]}}'
id="$(curl -sS -f -X POST -d "$job" "http://$addr/v1/jobs" | sed -n 's/.*"id":"\([^"]*\)".*/\1/p')"
[ -n "$id" ] || { echo "submit returned no job id" >&2; exit 1; }

for _ in $(seq 1 200); do
    state="$(curl -sS "http://$addr/v1/jobs/$id" | sed -n 's/.*"state":"\([^"]*\)".*/\1/p')"
    [ "$state" = "done" ] && break
    case "$state" in failed | canceled | timeout) echo "job landed in $state" >&2; exit 1 ;; esac
    sleep 0.05
done
[ "$state" = "done" ] || { echo "job stuck in $state" >&2; exit 1; }

echo "job $id done; first rows:"
curl -sS "http://$addr/v1/jobs/$id/results" | head -4
kill -TERM "$pid"
wait "$pid"
trap - EXIT INT TERM
echo "drained cleanly"
