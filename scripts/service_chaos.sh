#!/bin/sh
# service_chaos.sh — the bccd crash-recovery gate. Builds the daemon, runs a
# ~30k-point sweep job to completion once (the reference), then runs the same
# job on a fresh store under a kill -9 loop: the daemon is SIGKILLed at
# growing uptimes and restarted over the same store until the job reports
# done. The recovered results.csv must be byte-identical to the
# uninterrupted run's, and at least one kill must actually land mid-job —
# a loop that never interrupts anything proves nothing and fails.
#
# Usage: ./scripts/service_chaos.sh [workdir]
set -eu

work="${1:-$(mktemp -d)}"
cd "$(dirname "$0")/.."
go build -o "$work/bccd" ./cmd/bccd

# The job: 201 powers x 30 placements x 5 protocols = 30150 points, the same
# grid as the CLI checkpoint-resume smoke. %.17g keeps the float64 axes
# round-trip exact, so both runs parse byte-for-byte identical specs.
awk 'BEGIN{
  printf "{\"sweep\":{\"base\":{\"PowerDB\":0,\"GabDB\":-7,\"GarDB\":0,\"GbrDB\":5},\"powers_db\":[";
  for (p = 0; p <= 200; p++) printf "%s%.17g", (p ? "," : ""), p / 10;
  printf "],\"placements\":[";
  for (i = 0; i < 30; i++)
    printf "%s{\"Pos\":%.17g,\"Exponent\":3,\"GabDB\":-7}", (i ? "," : ""), 0.05 + 0.9 * i / 29;
  printf "],\"workers\":1}}";
}' > "$work/job.json"

# start_bccd <store>: launch the daemon on an ephemeral port and wait for
# the address file. Sets $pid and $addr.
start_bccd() {
    rm -f "$work/addr"
    "$work/bccd" -store "$1" -addr 127.0.0.1:0 -addrfile "$work/addr" 2>> "$work/bccd.log" &
    pid=$!
    for _ in $(seq 1 500); do
        [ -s "$work/addr" ] && break
        sleep 0.01
    done
    [ -s "$work/addr" ] || { echo "bccd never wrote its address" >&2; exit 1; }
    addr="$(cat "$work/addr")"
}

submit_job() {
    curl -sS -f -o /dev/null -X POST --data-binary @"$work/job.json" "http://$addr/v1/jobs"
}

job_done() {
    grep -q '"done"' "$1/j000001/state.json" 2> /dev/null
}

# Reference: the same job, uninterrupted, SIGTERM-drained afterwards.
start_bccd "$work/ref"
submit_job
for _ in $(seq 1 600); do
    job_done "$work/ref" && break
    sleep 0.05
done
job_done "$work/ref" || { echo "reference job never completed" >&2; exit 1; }
kill -TERM "$pid"
wait "$pid"

# Chaos: kill -9 at growing uptimes (the growth guarantees termination even
# on a slow runner; the small start guarantees the first kills land mid-job
# on a fast one), restart over the same store, until the job is done.
kills=0
for attempt in $(seq 0 49); do
    start_bccd "$work/chaos"
    [ "$attempt" -eq 0 ] && submit_job
    sleep "$(awk -v a="$attempt" 'BEGIN{printf "%.2f", 0.04 + 0.02 * a}')"
    if job_done "$work/chaos"; then
        kill -9 "$pid" 2> /dev/null || true
        wait "$pid" 2> /dev/null || true
        break
    fi
    kill -9 "$pid"
    wait "$pid" 2> /dev/null || true
    kills=$((kills + 1))
done
job_done "$work/chaos" || { echo "job never completed across $kills kills" >&2; exit 1; }
[ "$kills" -ge 1 ] || { echo "job finished before the first kill; the loop proved nothing" >&2; exit 1; }
echo "recovered from $kills SIGKILLs"
cmp "$work/ref/j000001/results.csv" "$work/chaos/j000001/results.csv"
echo "recovered results byte-identical to the uninterrupted run"
