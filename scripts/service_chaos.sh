#!/bin/sh
# service_chaos.sh — the bccd crash-recovery gate. Builds the daemon, runs a
# ~30k-point sweep job to completion once (the reference), then runs the same
# job on a fresh store under a kill -9 loop: the daemon is SIGKILLed at
# growing uptimes and restarted over the same store until the job reports
# done. The recovered results.csv must be byte-identical to the
# uninterrupted run's, and at least one kill must actually land mid-job —
# a loop that never interrupts anything proves nothing and fails.
#
# Every daemon here runs with the durable result cache (-cache), so the
# kill loop also chaos-tests the cache.log tier: torn tails from SIGKILL
# mid-append must be compacted away on restart, never poison replay, and
# never perturb a byte of output. Both runs use -cache because cached runs
# solve cold (see the internal/cache package doc) — the cache-enabled
# uninterrupted run IS the canonical reference. Afterwards the chaos store
# gets one more restart and a resubmission of the same job, which must be
# served from the replayed cache (hits observed on /stats) and again match
# the reference byte for byte.
#
# Usage: ./scripts/service_chaos.sh [workdir]
set -eu

work="${1:-$(mktemp -d)}"
cd "$(dirname "$0")/.."
go build -o "$work/bccd" ./cmd/bccd

# The job: 201 powers x 30 placements x 5 protocols = 30150 points, the same
# grid as the CLI checkpoint-resume smoke. %.17g keeps the float64 axes
# round-trip exact, so both runs parse byte-for-byte identical specs.
awk 'BEGIN{
  printf "{\"sweep\":{\"base\":{\"PowerDB\":0,\"GabDB\":-7,\"GarDB\":0,\"GbrDB\":5},\"powers_db\":[";
  for (p = 0; p <= 200; p++) printf "%s%.17g", (p ? "," : ""), p / 10;
  printf "],\"placements\":[";
  for (i = 0; i < 30; i++)
    printf "%s{\"Pos\":%.17g,\"Exponent\":3,\"GabDB\":-7}", (i ? "," : ""), 0.05 + 0.9 * i / 29;
  printf "],\"workers\":1}}";
}' > "$work/job.json"

# start_bccd <store>: launch the daemon on an ephemeral port and wait for
# the address file. Sets $pid and $addr.
start_bccd() {
    rm -f "$work/addr"
    "$work/bccd" -store "$1" -cache 65536 -addr 127.0.0.1:0 -addrfile "$work/addr" 2>> "$work/bccd.log" &
    pid=$!
    for _ in $(seq 1 500); do
        [ -s "$work/addr" ] && break
        sleep 0.01
    done
    [ -s "$work/addr" ] || { echo "bccd never wrote its address" >&2; exit 1; }
    addr="$(cat "$work/addr")"
}

submit_job() {
    curl -sS -f -o /dev/null -X POST --data-binary @"$work/job.json" "http://$addr/v1/jobs"
}

job_done() {
    grep -q '"done"' "$1/${2:-j000001}/state.json" 2> /dev/null
}

# Reference: the same job, uninterrupted, SIGTERM-drained afterwards.
start_bccd "$work/ref"
submit_job
for _ in $(seq 1 600); do
    job_done "$work/ref" && break
    sleep 0.05
done
job_done "$work/ref" || { echo "reference job never completed" >&2; exit 1; }
kill -TERM "$pid"
wait "$pid"

# Chaos: kill -9 at growing uptimes (the growth guarantees termination even
# on a slow runner; the small start guarantees the first kills land mid-job
# on a fast one), restart over the same store, until the job is done.
kills=0
for attempt in $(seq 0 49); do
    start_bccd "$work/chaos"
    [ "$attempt" -eq 0 ] && submit_job
    sleep "$(awk -v a="$attempt" 'BEGIN{printf "%.2f", 0.04 + 0.02 * a}')"
    if job_done "$work/chaos"; then
        kill -9 "$pid" 2> /dev/null || true
        wait "$pid" 2> /dev/null || true
        break
    fi
    kill -9 "$pid"
    wait "$pid" 2> /dev/null || true
    kills=$((kills + 1))
done
job_done "$work/chaos" || { echo "job never completed across $kills kills" >&2; exit 1; }
[ "$kills" -ge 1 ] || { echo "job finished before the first kill; the loop proved nothing" >&2; exit 1; }
echo "recovered from $kills SIGKILLs"
cmp "$work/ref/j000001/results.csv" "$work/chaos/j000001/results.csv"
echo "recovered results byte-identical to the uninterrupted run"

# Cache rerun: one more restart over the chaos store (replaying whatever
# survived the kills in cache.log) and a resubmission of the same job. The
# rerun must be served at least partly from cache — /stats hits observed —
# and its results.csv must again equal the reference's.
start_bccd "$work/chaos"
submit_job
for _ in $(seq 1 600); do
    job_done "$work/chaos" j000002 && break
    sleep 0.05
done
job_done "$work/chaos" j000002 || { echo "cache rerun job never completed" >&2; exit 1; }
hits="$(curl -sS -f "http://$addr/stats" | sed -n 's/.*"hits":\([0-9]*\).*/\1/p')"
kill -TERM "$pid"
wait "$pid"
[ -n "$hits" ] || { echo "/stats returned no cache hit counter" >&2; exit 1; }
[ "$hits" -gt 0 ] || { echo "cache rerun recorded zero hits; the durable tier is dead" >&2; exit 1; }
cmp "$work/ref/j000001/results.csv" "$work/chaos/j000002/results.csv"
echo "cache-served rerun ($hits hits) byte-identical to the uninterrupted run"
