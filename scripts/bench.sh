#!/bin/sh
# bench.sh — run the performance-ledger benchmark set and write a JSON
# snapshot (see cmd/benchjson). Usage:
#
#   ./scripts/bench.sh BENCH_after.json [benchtime]
#
# The set covers the LP hot path at three levels: raw simplex solve, one
# evaluator solve per protocol, the Monte Carlo per-block kernel, and the
# figure-level sweeps (Fig 3 relay placement, MABC/TDBC crossover, fading
# Monte Carlo) — plus the bit-true path at two levels: full TDBC/MABC runs
# (sequential and sharded) and the per-block kernels, the engine facade
# pair (Engine.SumRateBatch vs the same 1k-scenario grid through one-shot
# calls), and the sharded-core pair (RunCore bare vs resilience-armed —
# retry policy + checkpointer on a zero-fault run — pinning the happy-path
# price of the resilience layer), and the job-service pair
# (BenchmarkServiceJobOverhead vs BenchmarkServiceJobDirect — the fixed
# durability cost of running a sweep as a bccd job: store create, queue,
# executor claim, checkpointed log, state renames), and the result-cache
# set (BenchmarkSumRateBatchCachedHit vs ...Miss plus BenchmarkSweepCached
# and the store-level BenchmarkCacheHit — CI requires the hit/miss speedup
# via benchjson compare -min-speedup, and BenchmarkCacheHit's 0 allocs/op
# is gated like the other zero-alloc kernels), and the word-parallel kernel
# pairs (BenchmarkErasureMaskWord vs ...Scalar — CI requires the masked
# erasure sampling ≥3x over the retired per-position path — and the
# BenchmarkSolve{M4RI,Incremental}{256,1k,4k} elimination ladder, with the
# 4k M4RI-vs-incremental speedup gated in CI).
# The bit-true full-run benchmarks already iterate 64 blocks
# internally, so they get a smaller default -benchtime than the
# microbenchmarks.
set -eu

out="${1:-BENCH.json}"
benchtime="${2:-200x}"
bittime="${3:-10x}"
cd "$(dirname "$0")/.."

# The pattern lists are guarded by TestBenchLedgerCoverage (bench_ledger_test.go):
# every alternative must match an existing benchmark, and every benchmark in the
# ledger packages must either appear here or be explicitly exempted there — a new
# benchmark cannot be dropped from the ledger silently.
pattern='BenchmarkSimplexSolve$|BenchmarkEvaluatorSolve|BenchmarkEvaluatorFeasible$|BenchmarkOutageTrial$|BenchmarkSumRateLP$|BenchmarkFeasibility$|BenchmarkOutageBlock$|BenchmarkFig3$|BenchmarkSNRCrossover$|BenchmarkFadingOutage$|BenchmarkBitTrueTDBCBlock$|BenchmarkBitTrueMABCBlock$|BenchmarkErasureMaskScalar$|BenchmarkErasureMaskWord$|BenchmarkEngineSumRateBatch$|BenchmarkEngineSweep$|BenchmarkOneShotSumRateBatch$|BenchmarkRegionParallel$|BenchmarkCampaign$|BenchmarkRunCore$|BenchmarkRunCoreResilient$|BenchmarkServiceJobOverhead$|BenchmarkServiceJobDirect$|BenchmarkSumRateBatchCachedHit$|BenchmarkSumRateBatchCachedMiss$|BenchmarkSweepCached$|BenchmarkCacheHit$'
bitpattern='BenchmarkBitTrueTDBC$|BenchmarkBitTrueTDBCParallel$|BenchmarkBitTrueMABC$|BenchmarkBitTrueMABCParallel$|BenchmarkSolveIncremental256$|BenchmarkSolveM4RI256$|BenchmarkSolveIncremental1k$|BenchmarkSolveM4RI1k$|BenchmarkSolveIncremental4k$|BenchmarkSolveM4RI4k$'

# The bench runs land in a temp file first, NOT straight into the benchjson
# pipeline: this is POSIX sh (no pipefail), so a failing `go test -bench`
# inside a pipeline would be masked by the pipe's last stage and the script
# would happily ledger a truncated run. With the redirect, set -e aborts on
# the failing go test before anything is ledgered.
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT INT TERM

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
    . ./internal/protocols/ ./internal/sim/ ./internal/simplex/ ./internal/sweep/ \
    ./internal/service/ ./internal/cache/ > "$raw"
go test -run '^$' -bench "$bitpattern" -benchmem -benchtime "$bittime" \
    ./internal/sim/ ./internal/gf2/ >> "$raw"

tee /dev/stderr < "$raw" | go run ./cmd/benchjson > "$out"
echo "wrote $out" >&2
