#!/bin/sh
# bench.sh — run the performance-ledger benchmark set and write a JSON
# snapshot (see cmd/benchjson). Usage:
#
#   ./scripts/bench.sh BENCH_after.json [benchtime]
#
# The set covers the LP hot path at three levels: raw simplex solve, one
# evaluator solve per protocol, the Monte Carlo per-block kernel, and the
# figure-level sweeps (Fig 3 relay placement, MABC/TDBC crossover, fading
# Monte Carlo) — plus the bit-true path at two levels: full TDBC/MABC runs
# (sequential and sharded) and the per-block kernels, and the engine facade
# pair (Engine.SumRateBatch vs the same 1k-scenario grid through one-shot
# calls). The bit-true full-run benchmarks already iterate 64 blocks
# internally, so they get a smaller default -benchtime than the
# microbenchmarks.
set -eu

out="${1:-BENCH.json}"
benchtime="${2:-200x}"
bittime="${3:-10x}"
cd "$(dirname "$0")/.."

# The pattern lists are guarded by TestBenchLedgerCoverage (bench_ledger_test.go):
# every alternative must match an existing benchmark, and every benchmark in the
# ledger packages must either appear here or be explicitly exempted there — a new
# benchmark cannot be dropped from the ledger silently.
pattern='BenchmarkSimplexSolve$|BenchmarkEvaluatorSolve|BenchmarkEvaluatorFeasible$|BenchmarkOutageTrial$|BenchmarkSumRateLP$|BenchmarkFeasibility$|BenchmarkOutageBlock$|BenchmarkFig3$|BenchmarkSNRCrossover$|BenchmarkFadingOutage$|BenchmarkBitTrueTDBCBlock$|BenchmarkBitTrueMABCBlock$|BenchmarkEngineSumRateBatch$|BenchmarkEngineSweep$|BenchmarkOneShotSumRateBatch$|BenchmarkRegionParallel$|BenchmarkCampaign$'
bitpattern='BenchmarkBitTrueTDBC$|BenchmarkBitTrueTDBCParallel$|BenchmarkBitTrueMABC$|BenchmarkBitTrueMABCParallel$'

{
    go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
        . ./internal/protocols/ ./internal/sim/ ./internal/simplex/
    go test -run '^$' -bench "$bitpattern" -benchmem -benchtime "$bittime" \
        ./internal/sim/
} | tee /dev/stderr \
    | go run ./cmd/benchjson > "$out"
echo "wrote $out" >&2
