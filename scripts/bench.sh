#!/bin/sh
# bench.sh — run the performance-ledger benchmark set and write a JSON
# snapshot (see cmd/benchjson). Usage:
#
#   ./scripts/bench.sh BENCH_after.json [benchtime]
#
# The set covers the LP hot path at three levels: raw simplex solve, one
# evaluator solve per protocol, the Monte Carlo per-block kernel, and the
# figure-level sweeps (Fig 3 relay placement, MABC/TDBC crossover, fading
# Monte Carlo).
set -eu

out="${1:-BENCH.json}"
benchtime="${2:-200x}"
cd "$(dirname "$0")/.."

pattern='BenchmarkSimplexSolve$|BenchmarkEvaluatorSolve|BenchmarkEvaluatorFeasible$|BenchmarkOutageTrial$|BenchmarkSumRateLP$|BenchmarkFeasibility$|BenchmarkOutageBlock$|BenchmarkFig3$|BenchmarkSNRCrossover$|BenchmarkFadingOutage$'

go test -run '^$' -bench "$pattern" -benchmem -benchtime "$benchtime" \
    . ./internal/protocols/ ./internal/sim/ ./internal/simplex/ \
    | tee /dev/stderr \
    | go run ./cmd/benchjson > "$out"
echo "wrote $out" >&2
