package bicoop_test

// Benchmark harness: one benchmark per reproduced figure/claim (each drives
// the same experiment registry the CLI uses, in quick mode so a -bench run
// finishes in minutes), plus micro-benchmarks for the load-bearing
// primitives (LP solve, region construction, Blahut-Arimoto, GF(2) solve,
// fading draws, bit-true blocks).

import (
	"context"
	"io"
	"math/rand"
	"testing"

	"bicoop"
	"bicoop/internal/cache"
	"bicoop/internal/channel"
	"bicoop/internal/dmc"
	"bicoop/internal/experiments"
	"bicoop/internal/gf2"
	"bicoop/internal/protocols"
	"bicoop/internal/sim"
	"bicoop/internal/simplex"
	"bicoop/internal/xmath"
)

// benchExperiment runs a registry experiment in quick mode.
func benchExperiment(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		if _, err := experiments.Run(context.Background(), id, experiments.Config{Quick: true, Seed: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- One benchmark per paper artifact (see DESIGN.md experiment index). ---

// BenchmarkFig3 regenerates Fig 3: sum rates vs relay placement.
func BenchmarkFig3(b *testing.B) { benchExperiment(b, "fig3") }

// BenchmarkFig4LowSNR regenerates Fig 4 (top): regions at P = 0 dB.
func BenchmarkFig4LowSNR(b *testing.B) { benchExperiment(b, "fig4a") }

// BenchmarkFig4HighSNR regenerates Fig 4 (bottom): regions at P = 10 dB.
func BenchmarkFig4HighSNR(b *testing.B) { benchExperiment(b, "fig4b") }

// BenchmarkSNRCrossover sweeps the MABC/TDBC crossover claim.
func BenchmarkSNRCrossover(b *testing.B) { benchExperiment(b, "crossover") }

// BenchmarkClaimHBCOutside verifies the HBC-beyond-both-outer-bounds claim.
func BenchmarkClaimHBCOutside(b *testing.B) { benchExperiment(b, "hbc-escape") }

// BenchmarkClaimHBCStrict measures the strict HBC sum-rate advantage point.
func BenchmarkClaimHBCStrict(b *testing.B) {
	s, err := bicoop.RelayPlacement{Pos: 0.31, Exponent: 3}.Scenario(15)
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		hbc, err := bicoop.OptimalSumRate(bicoop.HBC, bicoop.Inner, s)
		if err != nil {
			b.Fatal(err)
		}
		mabc, err := bicoop.OptimalSumRate(bicoop.MABC, bicoop.Inner, s)
		if err != nil {
			b.Fatal(err)
		}
		tdbc, err := bicoop.OptimalSumRate(bicoop.TDBC, bicoop.Inner, s)
		if err != nil {
			b.Fatal(err)
		}
		if hbc.Sum <= mabc.Sum || hbc.Sum <= tdbc.Sum {
			b.Fatal("strict HBC advantage lost")
		}
	}
}

// BenchmarkMABCTightness verifies Theorem 2's inner = outer on random draws.
func BenchmarkMABCTightness(b *testing.B) { benchExperiment(b, "mabc-tight") }

// BenchmarkDeltaAblation measures the optimal-vs-equal-durations ablation.
func BenchmarkDeltaAblation(b *testing.B) { benchExperiment(b, "delta-ablation") }

// BenchmarkPathLossAblation sweeps Fig 3 across path-loss exponents.
func BenchmarkPathLossAblation(b *testing.B) { benchExperiment(b, "pathloss") }

// BenchmarkFadingOutage runs the Rayleigh fading Monte Carlo.
func BenchmarkFadingOutage(b *testing.B) { benchExperiment(b, "fading") }

// BenchmarkBitsimTDBC runs the bit-true waterfall experiment end to end
// (the kernel-level bit-true benchmarks live in internal/sim as
// BenchmarkBitTrueTDBC*).
func BenchmarkBitsimTDBC(b *testing.B) { benchExperiment(b, "bitsim") }

// BenchmarkDMCBounds evaluates the theorems on the all-BSC network.
func BenchmarkDMCBounds(b *testing.B) { benchExperiment(b, "dmc") }

// BenchmarkBlahutArimoto measures quantized-AWGN capacity convergence.
func BenchmarkBlahutArimoto(b *testing.B) { benchExperiment(b, "blahut") }

// BenchmarkAllExperimentsRendered runs the registry end to end including
// ASCII rendering — the full `bcc all -quick` path.
func BenchmarkAllExperimentsRendered(b *testing.B) {
	for i := 0; i < b.N; i++ {
		for _, id := range bicoop.Experiments() {
			if err := bicoop.RunExperiment(context.Background(), id, true, 1, io.Discard); err != nil {
				b.Fatal(err)
			}
		}
	}
}

// --- Micro-benchmarks for the primitives. ---

func fig4Scenario(pdb float64) protocols.Scenario {
	return protocols.NewScenarioDB(pdb, -7, 0, 5)
}

// BenchmarkSumRateLP measures one HBC sum-rate LP (compile + solve).
func BenchmarkSumRateLP(b *testing.B) {
	s := fig4Scenario(10)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := protocols.OptimalSumRate(protocols.HBC, protocols.BoundInner, s); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRegionBuild measures a full 181-angle region construction.
func BenchmarkRegionBuild(b *testing.B) {
	spec, err := protocols.CompileGaussian(protocols.TDBC, protocols.BoundOuter, fig4Scenario(10))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Region(protocols.RegionOptions{Angles: 181}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFeasibility measures one rate-pair feasibility LP.
func BenchmarkFeasibility(b *testing.B) {
	spec, err := protocols.CompileGaussian(protocols.HBC, protocols.BoundInner, fig4Scenario(10))
	if err != nil {
		b.Fatal(err)
	}
	pt := protocols.RatePair{Ra: 1.0, Rb: 1.0}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := spec.Feasible(pt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSimplexSolve measures the raw LP solver on the TDBC-shaped LP.
func BenchmarkSimplexSolve(b *testing.B) {
	p := simplex.Problem{
		C: []float64{1, 1, 0, 0, 0},
		AUb: [][]float64{
			{1, 0, -1.14, 0, 0},
			{1, 0, -0.26, 0, -2.05},
			{0, 1, 0, -2.05, 0},
			{0, 1, 0, -0.26, -1.0},
			{1, 1, -1.0, -2.05, 0},
		},
		BUb: []float64{0, 0, 0, 0, 0},
		AEq: [][]float64{{0, 0, 1, 1, 1}},
		BEq: []float64{1},
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := p.Solve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBlahutIteration measures BA capacity of a 2x64 quantized channel.
func BenchmarkBlahutIteration(b *testing.B) {
	ch, err := dmc.QuantizeAWGN(1.0, 64, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := ch.Capacity(1e-9, 0); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGF2Solve measures solving a 256x256 GF(2) system.
func BenchmarkGF2Solve(b *testing.B) {
	r := rand.New(rand.NewSource(1))
	var m gf2.Matrix
	for {
		m = gf2.RandomMatrix(256, 256, r)
		if m.Rank() == 256 {
			break
		}
	}
	x := gf2.RandomVector(256, r)
	rhs, err := m.MulVec(x)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := m.Solve(rhs); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFadingDraw measures quasi-static gain sampling.
func BenchmarkFadingDraw(b *testing.B) {
	f, err := channel.NewFading(channel.GainsFromDB(-7, 0, 5), rand.New(rand.NewSource(1)))
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		_ = f.Draw()
	}
}

// BenchmarkBitTrueBlock measures one bit-true TDBC block (1000 uses).
func BenchmarkBitTrueBlock(b *testing.B) {
	cfg := sim.BitTrueConfig{
		Net:         sim.ErasureNetwork{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6},
		Rates:       protocols.RatePair{Ra: 0.2, Rb: 0.2},
		BlockLength: 1000,
		Trials:      1,
		Seed:        1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := sim.RunBitTrueTDBC(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkOutageBlock measures one fading block across three protocols.
func BenchmarkOutageBlock(b *testing.B) {
	cfg := sim.OutageConfig{
		Mean:      channel.GainsFromDB(-7, 0, 5),
		P:         xmath.FromDB(10),
		Protocols: []protocols.Protocol{protocols.MABC, protocols.TDBC, protocols.HBC},
		Target:    protocols.RatePair{Ra: 0.5, Rb: 0.5},
		Trials:    1,
		Workers:   1,
	}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		cfg.Seed = int64(i)
		if _, err := sim.RunOutage(context.Background(), cfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBaselines runs the AF / full-duplex baseline comparison sweep.
func BenchmarkBaselines(b *testing.B) { benchExperiment(b, "baselines") }

// BenchmarkBitsimMABC runs the compute-and-forward MABC waterfall
// experiment end to end (kernel-level counterpart: internal/sim's
// BenchmarkBitTrueMABC*).
func BenchmarkBitsimMABC(b *testing.B) { benchExperiment(b, "bitsim-mabc") }

// BenchmarkBER runs the symbol-level BER validation sweep.
func BenchmarkBER(b *testing.B) { benchExperiment(b, "ber") }

// --- Engine batch vs legacy one-shot facade. ---

// batchScenarios builds the 1000-point power × gain grid both batch
// benchmarks evaluate, mirroring a Fig 3 style bulk query — the same grid
// shape the correctness tests pin (see grid in engine_test.go).
func batchScenarios() []bicoop.Scenario { return grid(1000) }

// BenchmarkEngineSumRateBatch measures Engine.SumRateBatch over a
// 1k-scenario grid: one warm evaluator across the batch, one shared
// durations backing array, no per-call pool traffic.
func BenchmarkEngineSumRateBatch(b *testing.B) {
	eng := bicoop.NewEngine()
	scenarios := batchScenarios()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SumRateBatch(ctx, bicoop.HBC, bicoop.Inner, scenarios); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkEngineSweep measures Engine.SweepAll over a Fig 3 style
// placement grid (37 positions × 5 protocols at 15 dB) — the sharded
// streaming grid path with per-chunk warm-started Naive4/HBC LPs.
func BenchmarkEngineSweep(b *testing.B) {
	eng := bicoop.NewEngine()
	spec := bicoop.SweepSpec{PowersDB: []float64{15}}
	for i := 0; i < 37; i++ {
		spec.Placements = append(spec.Placements,
			bicoop.RelayPlacement{Pos: 0.05 + 0.9*float64(i)/36, Exponent: 3})
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := eng.SweepAll(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != spec.Size() {
			b.Fatal("short sweep")
		}
	}
}

// BenchmarkRegionParallel measures Engine.RegionBatch over the six Fig 4
// curves at quick resolution — the region workload on the sharded core
// (flattened angle axis, per-chunk warm-started HBC LPs, streamed hulls).
// On a single-core container it pins the sharding overhead against the old
// serial support sweep; on multi-core hosts the angle axis scales like the
// grid axes.
func BenchmarkRegionParallel(b *testing.B) {
	eng := bicoop.NewEngine()
	spec := bicoop.RegionBatchSpec{
		Scenarios: []bicoop.Scenario{{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5}},
		Curves: []bicoop.RegionCurve{
			{Protocol: bicoop.DT, Bound: bicoop.Inner},
			{Protocol: bicoop.MABC, Bound: bicoop.Inner},
			{Protocol: bicoop.TDBC, Bound: bicoop.Inner},
			{Protocol: bicoop.TDBC, Bound: bicoop.Outer},
			{Protocol: bicoop.MABC, Bound: bicoop.Outer},
			{Protocol: bicoop.HBC, Bound: bicoop.Inner},
		},
		Angles: 61,
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		curves := 0
		err := eng.RegionBatch(ctx, spec, func(bicoop.RegionBatchPoint) error {
			curves++
			return nil
		})
		if err != nil {
			b.Fatal(err)
		}
		if curves != spec.Size() {
			b.Fatal("short region batch")
		}
	}
}

// BenchmarkCampaign measures Engine.SimulateBatch over a fading seed
// family — the outer sharded sweep that pipelines whole Monte Carlo runs
// (deterministic per-spec seeds, one-goroutine inner default).
func BenchmarkCampaign(b *testing.B) {
	eng := bicoop.NewEngine()
	scen := bicoop.Scenario{PowerDB: 5, GabDB: -7, GarDB: 0, GbrDB: 5}
	var specs []bicoop.SimSpec
	for i := 0; i < 4; i++ {
		specs = append(specs, bicoop.SimSpec{
			Fading: &bicoop.FadingSpec{Scenario: scen, Target: bicoop.RatePoint{Ra: 0.5, Rb: 0.5}},
			Trials: 100,
			Seed:   int64(i),
		})
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := eng.SimulateBatch(ctx, bicoop.CampaignSpec{Specs: specs}, nil)
		if err != nil {
			b.Fatal(err)
		}
		if len(res) != len(specs) {
			b.Fatal("short campaign")
		}
	}
}

// --- Result cache (internal/cache threaded through the engine). ---

// BenchmarkSumRateBatchCachedHit measures SumRateBatch when every point is
// served from the result cache: the store is prefilled by one batch before
// the timer starts. The committed ledger gates this against
// BenchmarkSumRateBatchCachedMiss via `benchjson compare -min-speedup` —
// the hit path must stay much cheaper than re-solving.
func BenchmarkSumRateBatchCachedHit(b *testing.B) {
	st := cache.NewStore(1 << 13)
	eng := bicoop.NewEngine(bicoop.WithCacheStore(st))
	scenarios := batchScenarios()
	ctx := context.Background()
	if _, err := eng.SumRateBatch(ctx, bicoop.HBC, bicoop.Inner, scenarios); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.SumRateBatch(ctx, bicoop.HBC, bicoop.Inner, scenarios); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSumRateBatchCachedMiss measures the same batch with the store
// reset every iteration, so every point misses and solves cold — the
// denominator of the cache-gate speedup check.
func BenchmarkSumRateBatchCachedMiss(b *testing.B) {
	st := cache.NewStore(1 << 13)
	eng := bicoop.NewEngine(bicoop.WithCacheStore(st))
	scenarios := batchScenarios()
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st.Reset()
		if _, err := eng.SumRateBatch(ctx, bicoop.HBC, bicoop.Inner, scenarios); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepCached measures the Fig 3 style placement sweep (the
// BenchmarkEngineSweep workload) fully served from a warm result cache.
func BenchmarkSweepCached(b *testing.B) {
	eng := bicoop.NewEngine(bicoop.WithCache(1 << 13))
	spec := bicoop.SweepSpec{PowersDB: []float64{15}}
	for i := 0; i < 37; i++ {
		spec.Placements = append(spec.Placements,
			bicoop.RelayPlacement{Pos: 0.05 + 0.9*float64(i)/36, Exponent: 3})
	}
	ctx := context.Background()
	if _, err := eng.SweepAll(ctx, spec); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pts, err := eng.SweepAll(ctx, spec)
		if err != nil {
			b.Fatal(err)
		}
		if len(pts) != spec.Size() {
			b.Fatal("short sweep")
		}
	}
}

// BenchmarkOneShotSumRateBatch evaluates the same 1k-scenario grid through
// the legacy one-shot facade — one OptimalSumRate call per scenario,
// results collected exactly as SumRateBatch returns them. This is the
// baseline Engine.SumRateBatch is measured against.
func BenchmarkOneShotSumRateBatch(b *testing.B) {
	scenarios := batchScenarios()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := make([]bicoop.SumRateResult, 0, len(scenarios))
		for _, s := range scenarios {
			res, err := bicoop.OptimalSumRate(bicoop.HBC, bicoop.Inner, s)
			if err != nil {
				b.Fatal(err)
			}
			out = append(out, res)
		}
		if len(out) != len(scenarios) {
			b.Fatal("short batch")
		}
	}
}
