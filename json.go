package bicoop

// json.go — wire-format support for the facade's enums and specs. The bccd
// job service (internal/service, cmd/bccd) persists and accepts jobs as
// JSON; the enums marshal as their canonical protocol/bound names so a job
// spec reads {"protocols": ["MABC", "TDBC"], "bound": "inner"} instead of
// bare integers, and round-trips through encoding/json (and any other
// encoding.TextMarshaler consumer, including JSON map keys such as
// SimResult.Fading's).

import (
	"fmt"
	"strings"
)

// ParseProtocol resolves a protocol name (case-insensitive: "DT", "Naive4",
// "MABC", "TDBC", "HBC") to its enum value.
func ParseProtocol(name string) (Protocol, error) {
	for _, p := range AllProtocols() {
		if strings.EqualFold(p.String(), name) {
			return p, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownProtocol, name)
}

// ParseBound resolves a bound name (case-insensitive: "inner" or "outer") to
// its enum value.
func ParseBound(name string) (Bound, error) {
	for _, b := range []Bound{Inner, Outer} {
		if strings.EqualFold(b.String(), name) {
			return b, nil
		}
	}
	return 0, fmt.Errorf("%w: %q", ErrUnknownBound, name)
}

// MarshalText encodes the protocol as its canonical name, so JSON job specs
// carry "MABC" instead of an opaque integer. Unknown values are an error
// rather than a lossy encoding.
func (p Protocol) MarshalText() ([]byte, error) {
	if _, err := p.internal(); err != nil {
		return nil, err
	}
	return []byte(p.String()), nil
}

// UnmarshalText decodes a case-insensitive protocol name.
func (p *Protocol) UnmarshalText(text []byte) error {
	v, err := ParseProtocol(string(text))
	if err != nil {
		return err
	}
	*p = v
	return nil
}

// MarshalText encodes the bound as "inner" or "outer".
func (b Bound) MarshalText() ([]byte, error) {
	switch b {
	case Inner, Outer:
		return []byte(b.String()), nil
	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownBound, int(b))
	}
}

// UnmarshalText decodes a case-insensitive bound name.
func (b *Bound) UnmarshalText(text []byte) error {
	v, err := ParseBound(string(text))
	if err != nil {
		return err
	}
	*b = v
	return nil
}
