module bicoop

go 1.24
