module bicoop

go 1.23
