package bicoop

import (
	"context"
	"errors"
	"math"
	"strings"
	"testing"
)

// fig4 is the paper's Fig 4 evaluation scenario at the given power.
func fig4(powerDB float64) Scenario {
	return Scenario{PowerDB: powerDB, GabDB: -7, GarDB: 0, GbrDB: 5}
}

func TestProtocolFacade(t *testing.T) {
	tests := []struct {
		p      Protocol
		name   string
		phases int
	}{
		{DT, "DT", 2},
		{Naive4, "Naive4", 4},
		{MABC, "MABC", 2},
		{TDBC, "TDBC", 3},
		{HBC, "HBC", 4},
	}
	for _, tt := range tests {
		if got := tt.p.String(); got != tt.name {
			t.Errorf("String = %q, want %q", got, tt.name)
		}
		if got := tt.p.Phases(); got != tt.phases {
			t.Errorf("%v.Phases = %d, want %d", tt.p, got, tt.phases)
		}
	}
	if got := Protocol(0).String(); got != "Protocol(0)" {
		t.Errorf("unknown protocol String = %q", got)
	}
	if got := Protocol(0).Phases(); got != 0 {
		t.Errorf("unknown protocol Phases = %d", got)
	}
	if got := Bound(0).String(); got != "Bound(0)" {
		t.Errorf("unknown bound String = %q", got)
	}
	if len(AllProtocols()) != 5 {
		t.Errorf("AllProtocols = %v", AllProtocols())
	}
}

func TestOptimalSumRateFacade(t *testing.T) {
	res, err := OptimalSumRate(MABC, Inner, fig4(0))
	if err != nil {
		t.Fatal(err)
	}
	// Known value from the internal cross-validation: 1.0000 at P=0 dB.
	if math.Abs(res.Sum-1.0) > 1e-3 {
		t.Errorf("MABC sum at 0 dB = %v, want ~1.0", res.Sum)
	}
	if math.Abs(res.Point.Sum()-res.Sum) > 1e-9 {
		t.Errorf("point sum %v != objective %v", res.Point.Sum(), res.Sum)
	}
	var total float64
	for _, d := range res.Durations {
		total += d
	}
	if math.Abs(total-1) > 1e-9 {
		t.Errorf("durations sum to %v", total)
	}
	if _, err := OptimalSumRate(Protocol(99), Inner, fig4(0)); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("err = %v, want ErrUnknownProtocol", err)
	}
	if _, err := OptimalSumRate(MABC, Bound(99), fig4(0)); !errors.Is(err, ErrUnknownBound) {
		t.Errorf("err = %v, want ErrUnknownBound", err)
	}
	if _, err := OptimalSumRate(MABC, Inner, Scenario{PowerDB: math.Inf(1)}); err == nil {
		t.Error("want error for broken scenario")
	}
}

func TestRateRegionFacade(t *testing.T) {
	r, err := RateRegion(context.Background(), TDBC, Inner, fig4(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Vertices()) < 3 {
		t.Fatalf("region too degenerate: %v", r.Vertices())
	}
	if !r.Contains(RatePoint{}) {
		t.Error("region must contain the origin")
	}
	if r.MaxRa() <= 0 || r.MaxRb() <= 0 || r.MaxSumRate() <= 0 || r.Area() <= 0 {
		t.Error("region summaries must be positive")
	}
	if r.MaxSumRate() > r.MaxRa()+r.MaxRb()+1e-9 {
		t.Error("sum rate exceeds MaxRa+MaxRb")
	}
	rb, ok := r.MaxRbAt(0)
	if !ok || math.Abs(rb-r.MaxRb()) > 1e-6 {
		t.Errorf("MaxRbAt(0) = (%v, %v), want (%v, true)", rb, ok, r.MaxRb())
	}
	if _, ok := r.MaxRbAt(r.MaxRa() + 1); ok {
		t.Error("MaxRbAt beyond the region should report false")
	}
	if _, err := RateRegion(context.Background(), Protocol(99), Inner, fig4(0)); err == nil {
		t.Error("want error for unknown protocol")
	}
	if _, err := RateRegion(context.Background(), MABC, Bound(99), fig4(0)); err == nil {
		t.Error("want error for unknown bound")
	}
}

func TestFeasibleFacade(t *testing.T) {
	s := fig4(10)
	opt, err := OptimalSumRate(HBC, Inner, s)
	if err != nil {
		t.Fatal(err)
	}
	ok, err := Feasible(HBC, Inner, s, opt.Point)
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("optimal point must be feasible")
	}
	ok, err = Feasible(HBC, Inner, s, RatePoint{Ra: opt.Point.Ra * 2, Rb: opt.Point.Rb * 2})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Error("doubled point must be infeasible")
	}
	if _, err := Feasible(Protocol(99), Inner, s, RatePoint{}); err == nil {
		t.Error("want error for unknown protocol")
	}
	if _, err := Feasible(MABC, Bound(99), s, RatePoint{}); err == nil {
		t.Error("want error for unknown bound")
	}
}

func TestRelayPlacementFacade(t *testing.T) {
	rp := RelayPlacement{Pos: 0.5, Exponent: 3}
	s, err := rp.Scenario(15)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.GabDB) > 1e-9 {
		t.Errorf("GabDB = %v, want 0", s.GabDB)
	}
	if math.Abs(s.GarDB-s.GbrDB) > 1e-9 {
		t.Errorf("midpoint gains differ: %v vs %v", s.GarDB, s.GbrDB)
	}
	// 0.5^-3 = 8 -> ~9.03 dB.
	if math.Abs(s.GarDB-9.0309) > 0.01 {
		t.Errorf("GarDB = %v, want ~9.03", s.GarDB)
	}
	if _, err := (RelayPlacement{Pos: 1.5}).Scenario(10); err == nil {
		t.Error("want error for off-segment relay")
	}
}

func TestHBCBeyondOuterBoundsFacade(t *testing.T) {
	pts, err := HBCBeyondOuterBounds(fig4(10))
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) == 0 {
		t.Fatal("expected escape points at P = 10 dB (the paper's finding)")
	}
	// Every returned point is achievable for HBC and infeasible for both
	// outer bounds.
	for _, pt := range pts[:min(len(pts), 5)] {
		okHBC, err := Feasible(HBC, Inner, fig4(10), pt)
		if err != nil {
			t.Fatal(err)
		}
		if !okHBC {
			t.Errorf("escape point %+v not HBC-achievable", pt)
		}
		okM, err := Feasible(MABC, Outer, fig4(10), pt)
		if err != nil {
			t.Fatal(err)
		}
		okT, err := Feasible(TDBC, Outer, fig4(10), pt)
		if err != nil {
			t.Fatal(err)
		}
		if okM || okT {
			t.Errorf("escape point %+v inside an outer bound (MABC=%v TDBC=%v)", pt, okM, okT)
		}
	}
}

func TestSimulateFadingFacade(t *testing.T) {
	stats, err := SimulateFading(context.Background(), FadingConfig{
		Scenario: fig4(5),
		Target:   RatePoint{Ra: 0.3, Rb: 0.3},
		Trials:   300,
		Seed:     42,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(stats) != 3 {
		t.Fatalf("default protocols: got %d stats", len(stats))
	}
	for p, st := range stats {
		if st.MeanOptSumRate <= 0 {
			t.Errorf("%v: non-positive mean sum rate", p)
		}
		if st.OutageProb < 0 || st.OutageProb > 1 {
			t.Errorf("%v: outage %v out of range", p, st.OutageProb)
		}
	}
	if stats[HBC].MeanOptSumRate < stats[MABC].MeanOptSumRate-1e-9 {
		t.Error("HBC fading mean below MABC")
	}
	if _, err := SimulateFading(context.Background(), FadingConfig{Scenario: fig4(5), Protocols: []Protocol{Protocol(99)}}); err == nil {
		t.Error("want error for unknown protocol")
	}
}

func TestSimulateBitTrueTDBCFacade(t *testing.T) {
	res, err := SimulateBitTrueTDBC(context.Background(), BitTrueTDBCConfig{
		Links:       ErasureLinks{EpsAR: 0.1, EpsBR: 0.1, EpsAB: 0.5},
		Rates:       RatePoint{Ra: 0.15, Rb: 0.15},
		BlockLength: 1500,
		Trials:      10,
		Seed:        7,
		Workers:     2, // exercises the facade plumb-through deterministically
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessProb < 0.8 {
		t.Errorf("success %v, want >= 0.8 for comfortable rates", res.SuccessProb)
	}
	if _, err := SimulateBitTrueTDBC(context.Background(), BitTrueTDBCConfig{
		Links: ErasureLinks{EpsAR: 2}, Rates: RatePoint{Ra: 0.1, Rb: 0.1},
		BlockLength: 100, Trials: 2, Seed: 1,
	}); err == nil {
		t.Error("want error for invalid links")
	}
	// The erasure optimum is consistent with the simulator's own bound.
	opt, err := OptimalTDBCErasureRates(ErasureLinks{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if opt.Sum <= 0 || len(opt.Durations) != 3 {
		t.Errorf("erasure optimum implausible: %+v", opt)
	}
	if _, err := OptimalTDBCErasureRates(ErasureLinks{EpsAR: -1}); err == nil {
		t.Error("want error for invalid links")
	}
}

func TestExperimentFacade(t *testing.T) {
	ids := Experiments()
	if len(ids) < 10 {
		t.Fatalf("only %d experiments registered: %v", len(ids), ids)
	}
	desc, err := DescribeExperiment("fig3")
	if err != nil {
		t.Fatal(err)
	}
	if desc == "" {
		t.Error("empty description")
	}
	if _, err := DescribeExperiment("nope"); err == nil {
		t.Error("want error for unknown experiment")
	}
	var sb strings.Builder
	if err := RunExperiment(context.Background(), "crossover", true, 1, &sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"== crossover ==", "Findings:", "legend:"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered output missing %q", want)
		}
	}
	if err := RunExperiment(context.Background(), "nope", true, 1, &sb); err == nil {
		t.Error("want error for unknown experiment")
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func TestBaselineFacades(t *testing.T) {
	s := fig4(10)
	af, err := AmplifyForwardSumRate(s)
	if err != nil {
		t.Fatal(err)
	}
	fd, err := FullDuplexSumRate(s)
	if err != nil {
		t.Fatal(err)
	}
	hbc, err := OptimalSumRate(HBC, Inner, s)
	if err != nil {
		t.Fatal(err)
	}
	if !(af.Sum > 0 && fd.Sum > 0) {
		t.Fatalf("baseline sums: AF %v, FD %v", af.Sum, fd.Sum)
	}
	// Sandwich: AF (no decoding, half duplex) <= HBC <= full duplex.
	if hbc.Sum > fd.Sum+1e-9 {
		t.Errorf("HBC %v exceeds the full-duplex ceiling %v", hbc.Sum, fd.Sum)
	}
	if af.Sum > fd.Sum+1e-9 {
		t.Errorf("AF %v exceeds the full-duplex ceiling %v", af.Sum, fd.Sum)
	}
	pen, err := HalfDuplexPenalty(HBC, s)
	if err != nil {
		t.Fatal(err)
	}
	if pen <= 0 || pen > 1+1e-9 {
		t.Errorf("penalty %v out of (0,1]", pen)
	}
	if _, err := AmplifyForwardSumRate(Scenario{PowerDB: math.Inf(1)}); err == nil {
		t.Error("want error for broken scenario")
	}
	if _, err := FullDuplexSumRate(Scenario{PowerDB: math.Inf(1)}); err == nil {
		t.Error("want error for broken scenario")
	}
	if _, err := HalfDuplexPenalty(Protocol(99), s); err == nil {
		t.Error("want error for unknown protocol")
	}
}

func TestComputeForwardMABCFacade(t *testing.T) {
	links := MABCComputeForwardLinks{EpsMAC: 0.2, EpsRA: 0.15, EpsRB: 0.1}
	bound, durations := links.ComputeForwardBound()
	if bound <= 0 || len(durations) != 2 {
		t.Fatalf("bound %v durations %v", bound, durations)
	}
	run := func(rate float64) (BitTrueResult, error) {
		return SimulateBitTrueMABC(context.Background(), BitTrueMABCConfig{
			Links: links, Rate: rate,
			BlockLength: 2000, Trials: 12, Seed: 3,
			Workers: 2, // pinned so results do not depend on GOMAXPROCS
		})
	}
	res, err := run(bound * 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if res.SuccessProb < 0.9 {
		t.Errorf("success %v at 80%% of the bound", res.SuccessProb)
	}
	fail, err := run(bound * 1.2)
	if err != nil {
		t.Fatal(err)
	}
	if fail.SuccessProb > 0.1 {
		t.Errorf("success %v at 120%% of the bound, want ~0", fail.SuccessProb)
	}
	if _, err := SimulateBitTrueMABC(context.Background(), BitTrueMABCConfig{
		Links: MABCComputeForwardLinks{EpsMAC: -1},
		Rate:  0.1, BlockLength: 100, Trials: 2, Seed: 1,
	}); err == nil {
		t.Error("want error for invalid links")
	}
}
