package bicoop

import (
	"encoding/json"
	"errors"
	"testing"
)

func TestParseProtocol(t *testing.T) {
	for _, p := range AllProtocols() {
		got, err := ParseProtocol(p.String())
		if err != nil || got != p {
			t.Errorf("ParseProtocol(%q) = (%v, %v), want (%v, nil)", p.String(), got, err, p)
		}
		lower, err := ParseProtocol("mabc")
		if err != nil || lower != MABC {
			t.Errorf("ParseProtocol is not case-insensitive: (%v, %v)", lower, err)
		}
	}
	if _, err := ParseProtocol("FDMA"); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("unknown name: err = %v, want ErrUnknownProtocol", err)
	}
}

func TestParseBound(t *testing.T) {
	for _, b := range []Bound{Inner, Outer} {
		got, err := ParseBound(b.String())
		if err != nil || got != b {
			t.Errorf("ParseBound(%q) = (%v, %v), want (%v, nil)", b.String(), got, err, b)
		}
	}
	if got, err := ParseBound("OUTER"); err != nil || got != Outer {
		t.Errorf("ParseBound is not case-insensitive: (%v, %v)", got, err)
	}
	if _, err := ParseBound("middle"); !errors.Is(err, ErrUnknownBound) {
		t.Errorf("unknown name: err = %v, want ErrUnknownBound", err)
	}
}

func TestEnumJSONRoundTrip(t *testing.T) {
	// Protocol and Bound must survive a JSON round trip as names, the form
	// bccd job specs are written and persisted in.
	type wire struct {
		Protocols []Protocol
		Bound     Bound
	}
	in := wire{Protocols: AllProtocols(), Bound: Outer}
	data, err := json.Marshal(in)
	if err != nil {
		t.Fatal(err)
	}
	want := `{"Protocols":["DT","Naive4","MABC","TDBC","HBC"],"Bound":"outer"}`
	if string(data) != want {
		t.Errorf("marshal = %s, want %s", data, want)
	}
	var out wire
	if err := json.Unmarshal(data, &out); err != nil {
		t.Fatal(err)
	}
	if len(out.Protocols) != len(in.Protocols) || out.Bound != in.Bound {
		t.Errorf("round trip lost data: %+v", out)
	}
	for i := range out.Protocols {
		if out.Protocols[i] != in.Protocols[i] {
			t.Errorf("Protocols[%d] = %v, want %v", i, out.Protocols[i], in.Protocols[i])
		}
	}
}

func TestEnumJSONRejectsUnknown(t *testing.T) {
	var p Protocol
	if err := json.Unmarshal([]byte(`"FDMA"`), &p); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("unknown protocol name: err = %v, want ErrUnknownProtocol", err)
	}
	var b Bound
	if err := json.Unmarshal([]byte(`"middle"`), &b); !errors.Is(err, ErrUnknownBound) {
		t.Errorf("unknown bound name: err = %v, want ErrUnknownBound", err)
	}
	if _, err := json.Marshal(Protocol(99)); err == nil {
		t.Error("marshaling an unknown protocol must fail, not encode lossily")
	}
	if _, err := json.Marshal(Bound(99)); err == nil {
		t.Error("marshaling an unknown bound must fail, not encode lossily")
	}
}
