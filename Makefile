# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

.PHONY: all build vet test bench bench-smoke bench-baseline bench-compare fmt-check lint region-artifacts bccd service-smoke service-chaos

all: build vet test lint

fmt-check:
	@out="$$(gofmt -s -l .)"; if [ -n "$$out" ]; then echo "files need gofmt -s:"; echo "$$out"; exit 1; fi

# lint runs the project's own invariant analyzers (cmd/bcclint: detrand,
# noalloc, ctxflow, atomicwrite, errwrap, cachekey — see doc.go "Static
# analysis").
# staticcheck and govulncheck ride along when installed; CI pins their
# versions and always runs them, so locally they are best-effort extras
# rather than a hard dependency of the target.
lint:
	go run ./cmd/bcclint ./...
	@if command -v staticcheck >/dev/null 2>&1; then staticcheck -checks 'SA*' ./...; else echo "staticcheck not installed; skipping (CI runs it pinned)"; fi
	@if command -v govulncheck >/dev/null 2>&1; then govulncheck ./...; else echo "govulncheck not installed; skipping (CI runs it pinned)"; fi

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# bench writes the current performance ledger (compare against
# BENCH_baseline.json; see doc.go "Performance and profiling").
bench:
	./scripts/bench.sh BENCH_after.json

# bench-smoke is the fast CI pass: every benchmark once, no ledger.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# bench-baseline refreshes the baseline ledger. Only meaningful on the
# first buildable revision (or after intentionally rebaselining).
bench-baseline:
	./scripts/bench.sh BENCH_baseline.json

# bench-compare is the local perf gate: a short ledger run compared against
# the committed BENCH_after.json (same command CI's bench-gate job runs,
# with the stricter same-machine threshold).
bench-compare:
	./scripts/bench.sh BENCH_ci.json 50x 3x
	go run ./cmd/benchjson compare BENCH_after.json BENCH_ci.json -threshold 1.25 \
		-min-speedup 'BenchmarkSumRateBatchCachedMiss/BenchmarkSumRateBatchCachedHit:5' \
		-min-speedup 'BenchmarkErasureMaskScalar/BenchmarkErasureMaskWord:3' \
		-min-speedup 'BenchmarkSolveIncremental4k/BenchmarkSolveM4RI4k:1.5'

# bccd builds the crash-safe job daemon (see doc.go "Running bccd").
bccd:
	go build -o bccd ./cmd/bccd

# service-smoke runs a quick end-to-end bccd lifecycle: start, submit a
# small sweep job, wait, fetch the CSV, SIGTERM-drain.
service-smoke:
	./scripts/service_smoke.sh

# service-chaos is the kill -9 recovery gate CI runs: a ~30k-point sweep
# job SIGKILLed and restarted until done, recovered results byte-identical
# to an uninterrupted run's.
service-chaos:
	./scripts/service_chaos.sh

# region-artifacts writes the canonical text+CSV artifacts of the region
# figures (both Fig 4 power levels) under artifacts/, through the same
# pipeline the golden-file tests pin (quick=false, publication resolution).
region-artifacts:
	go run ./cmd/bcc run fig4a -artifacts artifacts
	go run ./cmd/bcc run fig4b -artifacts artifacts
