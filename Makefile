# Convenience targets; CI runs the same commands (see .github/workflows/ci.yml).

.PHONY: all build vet test bench bench-smoke bench-baseline

all: build vet test

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# bench writes the current performance ledger (compare against
# BENCH_baseline.json; see doc.go "Performance and profiling").
bench:
	./scripts/bench.sh BENCH_after.json

# bench-smoke is the fast CI pass: every benchmark once, no ledger.
bench-smoke:
	go test -run '^$$' -bench . -benchtime 1x -benchmem ./...

# bench-baseline refreshes the baseline ledger. Only meaningful on the
# first buildable revision (or after intentionally rebaselining).
bench-baseline:
	./scripts/bench.sh BENCH_baseline.json
