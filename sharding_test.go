package bicoop_test

// sharding_test.go — determinism contract of the sharded grid paths: the
// worker count must never change a single result bit, only the wall-clock
// time. These tests exercise the facade end to end (engine pool, chunked
// internal/sweep core, warm-started Naive4/HBC LPs).

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"bicoop"
)

// TestSweepPlacementScenarioSentinel pins the facade's typed-error contract
// through the sharded core: a placement whose geometry resolves to an
// unusable scenario must still surface ErrInvalidScenario, as it did before
// sharding.
func TestSweepPlacementScenarioSentinel(t *testing.T) {
	spec := bicoop.SweepSpec{
		Placements: []bicoop.RelayPlacement{{Pos: 0.5, Exponent: math.NaN()}},
	}
	err := bicoop.NewEngine().Sweep(context.Background(), spec, func(bicoop.SweepPoint) error { return nil })
	if !errors.Is(err, bicoop.ErrInvalidScenario) {
		t.Errorf("Sweep err = %v, want ErrInvalidScenario", err)
	}
}

// TestSumRateBatchBitIdenticalAcrossWorkers compares SumRateBatch results
// between a single-worker and heavily-sharded engine with == semantics.
func TestSumRateBatchBitIdenticalAcrossWorkers(t *testing.T) {
	scenarios := grid(333) // several chunks plus a partial tail
	ctx := context.Background()
	for _, p := range []bicoop.Protocol{bicoop.TDBC, bicoop.Naive4, bicoop.HBC} {
		ref, err := bicoop.NewEngine(bicoop.WithWorkers(1)).SumRateBatch(ctx, p, bicoop.Inner, scenarios)
		if err != nil {
			t.Fatalf("%v workers=1: %v", p, err)
		}
		for _, workers := range []int{2, 8} {
			got, err := bicoop.NewEngine(bicoop.WithWorkers(workers)).SumRateBatch(ctx, p, bicoop.Inner, scenarios)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", p, workers, err)
			}
			if len(got) != len(ref) {
				t.Fatalf("%v workers=%d: %d results, want %d", p, workers, len(got), len(ref))
			}
			for i := range ref {
				if got[i].Sum != ref[i].Sum || got[i].Point != ref[i].Point ||
					!reflect.DeepEqual(got[i].Durations, ref[i].Durations) {
					t.Fatalf("%v workers=%d: result %d differs:\n  got  %+v\n  want %+v",
						p, workers, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestSweepAllBitIdenticalAcrossWorkers pins every SweepPoint field across
// Workers settings, including the warm-started Naive4/HBC curves and the
// erasure axis.
func TestSweepAllBitIdenticalAcrossWorkers(t *testing.T) {
	var places []bicoop.RelayPlacement
	for i := 0; i < 30; i++ {
		places = append(places, bicoop.RelayPlacement{Pos: 0.05 + 0.03*float64(i), Exponent: 3})
	}
	spec := bicoop.SweepSpec{
		PowersDB:   []float64{0, 10, 15},
		Placements: places,
		Erasures:   []bicoop.ErasureLinks{{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6}},
	}
	ctx := context.Background()

	spec.Workers = 1
	ref, err := bicoop.NewEngine().SweepAll(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != spec.Size() {
		t.Fatalf("got %d points, want %d", len(ref), spec.Size())
	}
	for _, workers := range []int{2, 8} {
		spec.Workers = workers
		got, err := bicoop.NewEngine().SweepAll(ctx, spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, ref) {
			for i := range ref {
				if !reflect.DeepEqual(got[i], ref[i]) {
					t.Fatalf("workers=%d: point %d differs:\n  got  %+v\n  want %+v", workers, i, got[i], ref[i])
				}
			}
			t.Fatalf("workers=%d: sweep differs from sequential", workers)
		}
	}
}
