package bicoop_test

// sharding_test.go — determinism contract of the sharded grid paths: the
// worker count must never change a single result bit, only the wall-clock
// time. These tests exercise the facade end to end (engine pool, chunked
// internal/sweep core, warm-started Naive4/HBC LPs).

import (
	"context"
	"errors"
	"math"
	"reflect"
	"testing"

	"bicoop"
)

// TestSweepPlacementScenarioSentinel pins the facade's typed-error contract
// through the sharded core: a placement whose geometry resolves to an
// unusable scenario must still surface ErrInvalidScenario, as it did before
// sharding.
func TestSweepPlacementScenarioSentinel(t *testing.T) {
	spec := bicoop.SweepSpec{
		Placements: []bicoop.RelayPlacement{{Pos: 0.5, Exponent: math.NaN()}},
	}
	err := bicoop.NewEngine().Sweep(context.Background(), spec, func(bicoop.SweepPoint) error { return nil })
	if !errors.Is(err, bicoop.ErrInvalidScenario) {
		t.Errorf("Sweep err = %v, want ErrInvalidScenario", err)
	}
}

// TestSumRateBatchBitIdenticalAcrossWorkers compares SumRateBatch results
// between a single-worker and heavily-sharded engine with == semantics.
func TestSumRateBatchBitIdenticalAcrossWorkers(t *testing.T) {
	scenarios := grid(333) // several chunks plus a partial tail
	ctx := context.Background()
	for _, p := range []bicoop.Protocol{bicoop.TDBC, bicoop.Naive4, bicoop.HBC} {
		ref, err := bicoop.NewEngine(bicoop.WithWorkers(1)).SumRateBatch(ctx, p, bicoop.Inner, scenarios)
		if err != nil {
			t.Fatalf("%v workers=1: %v", p, err)
		}
		for _, workers := range []int{2, 8} {
			got, err := bicoop.NewEngine(bicoop.WithWorkers(workers)).SumRateBatch(ctx, p, bicoop.Inner, scenarios)
			if err != nil {
				t.Fatalf("%v workers=%d: %v", p, workers, err)
			}
			if len(got) != len(ref) {
				t.Fatalf("%v workers=%d: %d results, want %d", p, workers, len(got), len(ref))
			}
			for i := range ref {
				if got[i].Sum != ref[i].Sum || got[i].Point != ref[i].Point ||
					!reflect.DeepEqual(got[i].Durations, ref[i].Durations) {
					t.Fatalf("%v workers=%d: result %d differs:\n  got  %+v\n  want %+v",
						p, workers, i, got[i], ref[i])
				}
			}
		}
	}
}

// TestRegionBitIdenticalAcrossWorkers pins the region determinism contract
// at the facade: every vertex of every curve of a RegionBatch — including
// the warm-started simplex protocols — must be bit-identical (==) for every
// Workers setting.
func TestRegionBitIdenticalAcrossWorkers(t *testing.T) {
	spec := bicoop.RegionBatchSpec{
		Scenarios: []bicoop.Scenario{
			{PowerDB: 0, GabDB: -7, GarDB: 0, GbrDB: 5},
			{PowerDB: 10, GabDB: -7, GarDB: 0, GbrDB: 5},
		},
		Curves: []bicoop.RegionCurve{
			{Protocol: bicoop.MABC, Bound: bicoop.Inner},
			{Protocol: bicoop.TDBC, Bound: bicoop.Outer},
			{Protocol: bicoop.HBC, Bound: bicoop.Inner},
			{Protocol: bicoop.Naive4, Bound: bicoop.Inner},
		},
		Angles: 91,
	}
	ctx := context.Background()
	collect := func(workers int) [][]bicoop.RatePoint {
		t.Helper()
		spec.Workers = workers
		var out [][]bicoop.RatePoint
		err := bicoop.NewEngine().RegionBatch(ctx, spec, func(pt bicoop.RegionBatchPoint) error {
			out = append(out, pt.Region.Vertices())
			return nil
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return out
	}
	ref := collect(1)
	if len(ref) != spec.Size() {
		t.Fatalf("got %d curves, want %d", len(ref), spec.Size())
	}
	for _, workers := range []int{2, 7} {
		got := collect(workers)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d curves, want %d", workers, len(got), len(ref))
		}
		for c := range ref {
			if len(got[c]) != len(ref[c]) {
				t.Fatalf("workers=%d: curve %d has %d vertices, want %d", workers, c, len(got[c]), len(ref[c]))
			}
			for v := range ref[c] {
				if got[c][v] != ref[c][v] { // == on both float fields
					t.Fatalf("workers=%d: curve %d vertex %d = %+v, want %+v",
						workers, c, v, got[c][v], ref[c][v])
				}
			}
		}
	}
}

// TestCampaignBitIdenticalAcrossWorkers pins the campaign determinism
// contract: the merged statistics of every run in a mixed fading/bit-true
// campaign are identical for every outer worker count, because each spec
// carries its own seed and a pinned inner worker count.
func TestCampaignBitIdenticalAcrossWorkers(t *testing.T) {
	scen := bicoop.Scenario{PowerDB: 5, GabDB: -7, GarDB: 0, GbrDB: 5}
	links := bicoop.ErasureLinks{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6}
	var specs []bicoop.SimSpec
	for i := 0; i < 5; i++ {
		specs = append(specs, bicoop.SimSpec{
			Fading: &bicoop.FadingSpec{Scenario: scen, Target: bicoop.RatePoint{Ra: 0.5, Rb: 0.5}},
			Trials: 120,
			Seed:   int64(100 + i),
		})
		specs = append(specs, bicoop.SimSpec{
			BitTrueTDBC: &bicoop.BitTrueTDBCSpec{Links: links, Rates: bicoop.RatePoint{Ra: 0.15, Rb: 0.15}, BlockLength: 400},
			Trials:      6,
			Seed:        int64(200 + i),
			Workers:     3, // explicit inner sharding stays deterministic too
		})
	}
	ctx := context.Background()
	run := func(workers int) []bicoop.SimResult {
		t.Helper()
		res, err := bicoop.NewEngine().SimulateBatch(ctx, bicoop.CampaignSpec{Specs: specs, Workers: workers}, nil)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(res) != len(specs) {
			t.Fatalf("workers=%d: %d results, want %d", workers, len(res), len(specs))
		}
		return res
	}
	ref := run(1)
	for _, workers := range []int{2, 7} {
		got := run(workers)
		for i := range ref {
			if !reflect.DeepEqual(got[i], ref[i]) {
				t.Fatalf("workers=%d: campaign result %d differs:\n  got  %+v\n  want %+v",
					workers, i, got[i], ref[i])
			}
		}
	}
}

// TestSweepAllBitIdenticalAcrossWorkers pins every SweepPoint field across
// Workers settings, including the warm-started Naive4/HBC curves and the
// erasure axis.
func TestSweepAllBitIdenticalAcrossWorkers(t *testing.T) {
	var places []bicoop.RelayPlacement
	for i := 0; i < 30; i++ {
		places = append(places, bicoop.RelayPlacement{Pos: 0.05 + 0.03*float64(i), Exponent: 3})
	}
	spec := bicoop.SweepSpec{
		PowersDB:   []float64{0, 10, 15},
		Placements: places,
		Erasures:   []bicoop.ErasureLinks{{EpsAR: 0.2, EpsBR: 0.1, EpsAB: 0.6}},
	}
	ctx := context.Background()

	spec.Workers = 1
	ref, err := bicoop.NewEngine().SweepAll(ctx, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(ref) != spec.Size() {
		t.Fatalf("got %d points, want %d", len(ref), spec.Size())
	}
	for _, workers := range []int{2, 8} {
		spec.Workers = workers
		got, err := bicoop.NewEngine().SweepAll(ctx, spec)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if !reflect.DeepEqual(got, ref) {
			for i := range ref {
				if !reflect.DeepEqual(got[i], ref[i]) {
					t.Fatalf("workers=%d: point %d differs:\n  got  %+v\n  want %+v", workers, i, got[i], ref[i])
				}
			}
			t.Fatalf("workers=%d: sweep differs from sequential", workers)
		}
	}
}
